// Device memory management for the virtual GPU.
//
// Device allocations are host heap memory, but every byte is accounted
// against the configured device capacity — exceeding it throws
// DeviceOutOfMemory, which is exactly the failure mode that forces the
// out-of-memory frameworks in the paper (CuSha/MapGraph refuse graphs
// larger than the card; GraphReduce shards instead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "util/common.hpp"

namespace gr::vgpu {

/// Thrown when a device allocation would exceed global memory capacity.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(std::uint64_t requested, std::uint64_t used,
                    std::uint64_t capacity)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + "B with " +
                           std::to_string(used) + "/" +
                           std::to_string(capacity) + "B in use"),
        requested_(requested) {}
  std::uint64_t requested() const { return requested_; }

 private:
  std::uint64_t requested_;
};

/// Capacity-enforcing allocator; owned by the Device.
class DeviceAllocator : util::NonCopyable {
 public:
  explicit DeviceAllocator(std::uint64_t capacity) : capacity_(capacity) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t available() const { return capacity_ - used_; }
  std::uint64_t peak_used() const { return peak_used_; }

  /// Raw allocation; throws DeviceOutOfMemory over capacity.
  void* allocate(std::uint64_t bytes);
  void deallocate(void* ptr, std::uint64_t bytes) noexcept;

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t peak_used_ = 0;
};

/// One up-front device reservation carved into many buffers (the
/// cudaMalloc-once / sub-allocate pattern real frameworks use for pool
/// or cache storage). The residency cache reserves its lane storage
/// through an arena so the engine can account "bytes dedicated to
/// cached shards" as a single number against the device budget, and so
/// releasing the cache is one deallocation instead of dozens.
///
/// Bump allocation only — individual sub-buffers are never returned;
/// the whole reservation is released when the arena dies. Sub-
/// allocations keep the device's 64-byte alignment.
class MemoryArena : util::NonCopyable {
 public:
  static constexpr std::uint64_t kAlignment = 64;

  MemoryArena() = default;
  /// Reserves `capacity` bytes from `allocator` (throws
  /// DeviceOutOfMemory like any other allocation).
  MemoryArena(DeviceAllocator& allocator, std::uint64_t capacity);
  MemoryArena(MemoryArena&& other) noexcept { *this = std::move(other); }
  MemoryArena& operator=(MemoryArena&& other) noexcept;
  ~MemoryArena() { release(); }

  /// Carves `bytes` (rounded up to kAlignment) out of the reservation;
  /// throws DeviceOutOfMemory against the arena capacity when full.
  void* allocate(std::uint64_t bytes);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t available() const { return capacity_ - used_; }
  bool valid() const { return base_ != nullptr || capacity_ == 0; }

  /// Releases the reservation back to the device allocator.
  void release() noexcept;

  static std::uint64_t align_up(std::uint64_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

 private:
  DeviceAllocator* allocator_ = nullptr;
  std::byte* base_ = nullptr;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
};

/// RAII typed device buffer (the cudaMalloc/cudaFree analog).
template <typename T>
class DeviceBuffer : util::NonCopyable {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceAllocator& allocator, std::size_t count)
      : allocator_(&allocator), count_(count) {
    if (count_ > 0)
      data_ = static_cast<T*>(allocator_->allocate(size_bytes()));
  }
  /// Arena-backed buffer: storage lives inside `arena`'s reservation
  /// and is reclaimed only when the arena is released (allocator_ stays
  /// null, so this buffer's destructor is a no-op).
  DeviceBuffer(MemoryArena& arena, std::size_t count) : count_(count) {
    if (count_ > 0) data_ = static_cast<T*>(arena.allocate(size_bytes()));
  }
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      allocator_ = other.allocator_;
      data_ = other.data_;
      count_ = other.count_;
      other.allocator_ = nullptr;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  ~DeviceBuffer() { release(); }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::uint64_t size_bytes() const { return count_ * sizeof(T); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::span<T> span() { return {data_, count_}; }
  std::span<const T> span() const { return {data_, count_}; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() noexcept {
    if (data_ != nullptr && allocator_ != nullptr)
      allocator_->deallocate(data_, size_bytes());
    data_ = nullptr;
    count_ = 0;
  }

  DeviceAllocator* allocator_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace gr::vgpu

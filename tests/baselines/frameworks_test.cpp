// Cross-framework validation: X-Stream, GraphChi, CuSha and MapGraph all
// compute the same answers as the serial references on every graph
// family, and their timing models expose the behaviours the paper's
// comparison hinges on (X-Stream's full-stream cost, GraphChi's
// interval-granularity skipping, CuSha's in-memory-only limit,
// MapGraph's frontier proportionality).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cusha/cusha.hpp"
#include "baselines/graphchi/graphchi.hpp"
#include "baselines/mapgraph/mapgraph.hpp"
#include "baselines/reference/serial.hpp"
#include "baselines/xstream/xstream.hpp"
#include "graph/generators.hpp"

namespace gr::baselines {
namespace {

namespace ref = reference;
using graph::EdgeList;
using graph::VertexId;

struct GraphCase {
  const char* name;
  EdgeList edges;
  VertexId source;
};

std::vector<GraphCase> test_graphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"path", graph::path_graph(50), 0});
  cases.push_back({"grid", graph::grid2d(10, 8), 3});
  cases.push_back({"rmat", graph::rmat(9, 2500, 21), 2});
  cases.push_back({"two_cycles", graph::two_cycles(15), 1});
  return cases;
}

enum class Framework { kXStream, kGraphChi, kCuSha, kMapGraph };

class AllFrameworks : public ::testing::TestWithParam<Framework> {
 protected:
  ::gr::baselines::Run<std::uint32_t> bfs(const EdgeList& e, VertexId s) {
    switch (GetParam()) {
      case Framework::kXStream: return xstream::run_bfs(e, s);
      case Framework::kGraphChi: return graphchi::run_bfs(e, s);
      case Framework::kCuSha: return cusha::run_bfs(e, s);
      case Framework::kMapGraph: return mapgraph::run_bfs(e, s);
    }
    GR_CHECK(false);
    __builtin_unreachable();
  }
  ::gr::baselines::Run<float> sssp(const EdgeList& e, VertexId s) {
    switch (GetParam()) {
      case Framework::kXStream: return xstream::run_sssp(e, s);
      case Framework::kGraphChi: return graphchi::run_sssp(e, s);
      case Framework::kCuSha: return cusha::run_sssp(e, s);
      case Framework::kMapGraph: return mapgraph::run_sssp(e, s);
    }
    GR_CHECK(false);
    __builtin_unreachable();
  }
  ::gr::baselines::Run<std::uint32_t> cc(const EdgeList& e) {
    switch (GetParam()) {
      case Framework::kXStream: return xstream::run_cc(e);
      case Framework::kGraphChi: return graphchi::run_cc(e);
      case Framework::kCuSha: return cusha::run_cc(e);
      case Framework::kMapGraph: return mapgraph::run_cc(e);
    }
    GR_CHECK(false);
    __builtin_unreachable();
  }
  ::gr::baselines::Run<float> pagerank(const EdgeList& e, std::uint32_t iters) {
    switch (GetParam()) {
      case Framework::kXStream: return xstream::run_pagerank(e, iters);
      case Framework::kGraphChi: return graphchi::run_pagerank(e, iters);
      case Framework::kCuSha: return cusha::run_pagerank(e, iters);
      case Framework::kMapGraph: return mapgraph::run_pagerank(e, iters);
    }
    GR_CHECK(false);
    __builtin_unreachable();
  }
};

TEST_P(AllFrameworks, BfsMatchesReference) {
  for (const GraphCase& tc : test_graphs()) {
    const auto result = bfs(tc.edges, tc.source);
    const auto expected = ref::bfs_depths(tc.edges, tc.source);
    ASSERT_EQ(result.values.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v)
      ASSERT_EQ(result.values[v], expected[v]) << tc.name << " v" << v;
    EXPECT_GT(result.report.seconds, 0.0);
    EXPECT_TRUE(result.report.converged);
  }
}

TEST_P(AllFrameworks, SsspMatchesDijkstra) {
  for (GraphCase& tc : test_graphs()) {
    tc.edges.randomize_weights(1.0f, 8.0f, 5);
    const auto result = sssp(tc.edges, tc.source);
    const auto expected = ref::sssp_distances(tc.edges, tc.source);
    for (VertexId v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v]))
        ASSERT_TRUE(std::isinf(result.values[v])) << tc.name << " v" << v;
      else
        ASSERT_NEAR(result.values[v], expected[v],
                    1e-3f * (1.0f + expected[v]))
            << tc.name << " v" << v;
    }
  }
}

TEST_P(AllFrameworks, CcMatchesUnionFindOnUndirected) {
  for (GraphCase& tc : test_graphs()) {
    tc.edges.make_undirected();
    const auto result = cc(tc.edges);
    const auto expected = ref::weak_components(tc.edges);
    for (VertexId v = 0; v < expected.size(); ++v)
      ASSERT_EQ(result.values[v], expected[v]) << tc.name << " v" << v;
  }
}

TEST_P(AllFrameworks, PageRankCloseToPowerIteration) {
  const EdgeList edges = graph::rmat(9, 3000, 8);
  const auto result = pagerank(edges, 40);
  const auto expected = ref::pagerank(edges, 40);
  double worst = 0.0;
  for (VertexId v = 0; v < expected.size(); ++v)
    worst = std::max(worst,
                     std::abs(double(result.values[v]) - expected[v]));
  EXPECT_LT(worst, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Frameworks, AllFrameworks,
                         ::testing::Values(Framework::kXStream,
                                           Framework::kGraphChi,
                                           Framework::kCuSha,
                                           Framework::kMapGraph),
                         [](const auto& info) {
                           switch (info.param) {
                             case Framework::kXStream: return "XStream";
                             case Framework::kGraphChi: return "GraphChi";
                             case Framework::kCuSha: return "CuSha";
                             case Framework::kMapGraph: return "MapGraph";
                           }
                           return "?";
                         });

// --- framework-specific behaviours ------------------------------------

TEST(XStream, StreamsAllEdgesEveryIteration) {
  const EdgeList edges = graph::path_graph(100);
  const auto result = xstream::run_bfs(edges, 0);
  // 99 iterations on a path, each streaming all 99 edges.
  EXPECT_EQ(result.report.edges_streamed,
            static_cast<std::uint64_t>(result.report.iterations) * 99u);
}

TEST(XStream, DensePagerankRunsAllIterationsUnlessConverged) {
  const EdgeList edges = graph::cycle_graph(30);
  const auto result = xstream::run_pagerank(edges, 50);
  // On a cycle PR is converged immediately (rank stays 1).
  EXPECT_LE(result.report.iterations, 3u);
  EXPECT_TRUE(result.report.converged);
}

TEST(XStream, TimeGrowsWithGraphSizeNotFrontier) {
  const EdgeList small = graph::path_graph(200);
  EdgeList big = graph::path_graph(200);
  // Add a large disconnected blob the BFS never reaches.
  {
    EdgeList blob = graph::erdos_renyi(2000, 40000, 3);
    EdgeList merged(200 + 2000);
    for (const graph::Edge& e : small.edges()) merged.add_edge(e.src, e.dst);
    for (const graph::Edge& e : blob.edges())
      merged.add_edge(e.src + 200, e.dst + 200);
    big = std::move(merged);
  }
  const auto a = xstream::run_bfs(small, 0);
  const auto b = xstream::run_bfs(big, 0);
  // X-Stream pays for the blob's edges every iteration despite them
  // never being active.
  EXPECT_GT(b.report.seconds, 4.0 * a.report.seconds);
}

TEST(GraphChi, SkipsIdleIntervals) {
  // A long path: only 1-2 intervals are active per iteration, so total
  // edges streamed is far below iterations * m.
  const EdgeList edges = graph::path_graph(1600);
  graphchi::Options options;
  options.intervals = 16;
  const auto result = graphchi::run_bfs(edges, 0, options);
  const std::uint64_t full =
      static_cast<std::uint64_t>(result.report.iterations) *
      edges.num_edges();
  EXPECT_LT(result.report.edges_streamed, full / 4);
}

TEST(GraphChi, SlowerThanXStreamOnDenseWork) {
  // The paper's Tables 3: GraphChi trails X-Stream on most inputs.
  const EdgeList edges = graph::rmat(11, 40000, 5);
  const auto gc = graphchi::run_pagerank(edges, 10);
  const auto xs = xstream::run_pagerank(edges, 10);
  EXPECT_GT(gc.report.seconds, xs.report.seconds);
}

TEST(CuSha, ThrowsDeviceOutOfMemoryForLargeGraphs) {
  const EdgeList edges = graph::rmat(10, 30000, 9);
  cusha::Options options;
  options.device.global_memory_bytes = 64 * 1024;
  EXPECT_THROW(cusha::run_bfs(edges, 0, options), vgpu::DeviceOutOfMemory);
}

TEST(CuSha, ProcessesAllEdgesEveryIteration) {
  const EdgeList edges = graph::path_graph(64);
  const auto result = cusha::run_bfs(edges, 0);
  EXPECT_EQ(result.report.edges_streamed,
            static_cast<std::uint64_t>(result.report.iterations) *
                edges.num_edges());
}

TEST(MapGraph, WorkTracksFrontierNotGraphSize) {
  const EdgeList edges = graph::path_graph(500);
  const auto result = mapgraph::run_bfs(edges, 0);
  // Frontier is one vertex per iteration: ~one in-edge processed each.
  EXPECT_LT(result.report.edges_streamed,
            2u * static_cast<std::uint64_t>(result.report.iterations));
}

TEST(MapGraph, BeatsCuShaOnSmallFrontierTraversal) {
  // Lollipop: a long path (frontier of one vertex for 300 iterations)
  // attached to a dense blob. CuSha reprocesses the blob's edges every
  // iteration; MapGraph only touches the frontier's adjacency.
  EdgeList edges(150 + 20000);
  for (VertexId v = 0; v + 1 < 150; ++v) edges.add_edge(v, v + 1);
  {
    const EdgeList blob = graph::erdos_renyi(20000, 1'000'000, 4);
    for (const graph::Edge& e : blob.edges())
      edges.add_edge(e.src + 150, e.dst + 150);
    edges.add_edge(149, 150);  // path feeds the blob
  }
  const auto mg = mapgraph::run_bfs(edges, 0);
  const auto cs = cusha::run_bfs(edges, 0);
  for (VertexId v = 0; v < 150; ++v) {
    ASSERT_EQ(mg.values[v], v);
    ASSERT_EQ(cs.values[v], v);
  }
  EXPECT_LT(mg.report.seconds, cs.report.seconds);
}

TEST(CuSha, BeatsMapGraphOnDenseWork) {
  // Dense PageRank: every vertex active, CuSha's coalesced layout wins
  // over MapGraph's random CSR pulls.
  const EdgeList edges = graph::rmat(11, 60000, 13);
  const auto cs = cusha::run_pagerank(edges, 15);
  const auto mg = mapgraph::run_pagerank(edges, 15);
  EXPECT_LT(cs.report.seconds, mg.report.seconds);
}

}  // namespace
}  // namespace gr::baselines

#include "baselines/reference/serial.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace gr::baselines::reference {
namespace {

using graph::EdgeList;

TEST(Reference, BfsOnPath) {
  const auto depth = bfs_depths(graph::path_graph(5), 0);
  EXPECT_EQ(depth, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Reference, BfsUnreachableIsMax) {
  const auto depth = bfs_depths(graph::two_cycles(3), 0);
  EXPECT_EQ(depth[3], ~0u);
}

TEST(Reference, SsspOnWeightedDiamond) {
  // 0->1 (1), 0->2 (5), 1->2 (1), 2->3 (1)
  EdgeList g(4);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(0, 2, 5.0f);
  g.add_edge(1, 2, 1.0f);
  g.add_edge(2, 3, 1.0f);
  const auto dist = sssp_distances(g, 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 2.0f);  // via vertex 1
  EXPECT_FLOAT_EQ(dist[3], 3.0f);
}

TEST(Reference, SsspRejectsNegativeWeights) {
  EdgeList g(2);
  g.add_edge(0, 1, -1.0f);
  EXPECT_THROW(sssp_distances(g, 0), util::CheckError);
}

TEST(Reference, PagerankSumsStayNearN) {
  const EdgeList g = graph::cycle_graph(10);
  const auto rank = pagerank(g, 30);
  double sum = 0;
  for (float r : rank) sum += r;
  // On a cycle every vertex keeps rank exactly 1.
  EXPECT_NEAR(sum, 10.0, 1e-3);
}

TEST(Reference, WeakComponentsOnTwoCycles) {
  const auto label = weak_components(graph::two_cycles(4));
  for (int v = 0; v < 4; ++v) EXPECT_EQ(label[v], label[0]);
  for (int v = 4; v < 8; ++v) EXPECT_EQ(label[v], label[4]);
  EXPECT_NE(label[0], label[4]);
}

TEST(Reference, WeakComponentsLabelIsMinimumId) {
  const auto label = weak_components(graph::two_cycles(4));
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[4], 4u);
}

TEST(Reference, MinLabelFixpointOnDirectedPath) {
  const auto label = min_label_fixpoint(graph::path_graph(4));
  EXPECT_EQ(label, (std::vector<std::uint32_t>{0, 0, 0, 0}));
}

TEST(Reference, MinLabelFixpointRespectsDirection) {
  // 1 -> 0: vertex 0 takes label 0 (already minimal); vertex 1 keeps 1
  // because nothing smaller can reach it.
  EdgeList g(2);
  g.add_edge(1, 0);
  const auto label = min_label_fixpoint(g);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 1u);
}

TEST(Reference, SpmvIdentityMatrix) {
  EdgeList g(3);
  for (graph::VertexId v = 0; v < 3; ++v) g.add_edge(v, v, 1.0f);
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(spmv(g, x), x);
}

TEST(Reference, HeatConservesUniformField) {
  const EdgeList g = graph::cycle_graph(8);
  std::vector<float> initial(8, 42.0f);
  const auto out = heat(g, initial, 5);
  for (float t : out) EXPECT_FLOAT_EQ(t, 42.0f);
}

TEST(Reference, TriangleCountsOnK4) {
  // K4: each vertex roots the triangles among its larger neighbours.
  EdgeList k4(4);
  for (graph::VertexId a = 0; a < 4; ++a)
    for (graph::VertexId b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  EXPECT_EQ(triangle_counts(k4),
            (std::vector<std::uint64_t>{3, 1, 0, 0}));
  // Cycles are triangle-free.
  for (std::uint64_t c : triangle_counts(graph::cycle_graph(9)))
    EXPECT_EQ(c, 0u);
}

TEST(Reference, CorenessOnPathAndK4) {
  for (std::uint32_t c : coreness(graph::path_graph(8))) EXPECT_EQ(c, 1u);
  EdgeList k4(4);
  for (graph::VertexId a = 0; a < 4; ++a)
    for (graph::VertexId b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  for (std::uint32_t c : coreness(k4)) EXPECT_EQ(c, 3u);
}

TEST(Reference, CorenessPeelsHairOffACycle) {
  // A triangle with a pendant vertex: the pendant is 1-core, the
  // triangle is 2-core.
  EdgeList g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);  // pendant
  const auto core = coreness(g);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{2, 2, 2, 1}));
}

TEST(Reference, LabelPropagationOscillatesOnAStar) {
  // Synchronous updates trade labels between hub and leaves each round,
  // so the round count is observable: after an even number of rounds
  // everyone is back to the smallest neighbour of their start state.
  const auto even = label_propagation(graph::star_graph(5), 2);
  EXPECT_EQ(even[0], 0u);
  for (int v = 1; v < 5; ++v) EXPECT_EQ(even[v], 1u);
  const auto odd = label_propagation(graph::star_graph(5), 3);
  EXPECT_EQ(odd[0], 1u);
  for (int v = 1; v < 5; ++v) EXPECT_EQ(odd[v], 0u);
}

TEST(Reference, LabelPropagationIsolatedVertexKeepsItsLabel) {
  EdgeList g(3);
  g.add_edge(0, 1);
  const auto label = label_propagation(g, 4);
  EXPECT_EQ(label[2], 2u);
}

TEST(Reference, BetweennessOnDirectedPath) {
  // 0->1->2->3: the dependency of each vertex is the number of
  // downstream vertices on the unique shortest paths.
  const auto delta = betweenness(graph::path_graph(4), 0);
  EXPECT_EQ(delta,
            (std::vector<float>{3.0f, 2.0f, 1.0f, 0.0f}));
}

TEST(Reference, BetweennessSplitsOverParallelShortestPaths) {
  // Diamond 0->{1,2}->3: two shortest paths to 3, each middle vertex
  // carries half a dependency; the source accumulates 2 (for reaching
  // 1, 2) + 1 (for 3) = 3.
  EdgeList g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto delta = betweenness(g, 0);
  EXPECT_FLOAT_EQ(delta[0], 3.0f);
  EXPECT_FLOAT_EQ(delta[1], 0.5f);
  EXPECT_FLOAT_EQ(delta[2], 0.5f);
  EXPECT_FLOAT_EQ(delta[3], 0.0f);
}

TEST(Reference, HeatDiffusesFromHotSpot) {
  const EdgeList g = graph::grid2d(5, 5);
  std::vector<float> initial(25, 0.0f);
  initial[12] = 100.0f;  // center
  const auto out = heat(g, initial, 3);
  EXPECT_LT(out[12], 100.0f);
  EXPECT_GT(out[7], 0.0f);  // neighbour warmed up
  EXPECT_FLOAT_EQ(out[0] + 1.0f, out[0] + 1.0f);  // no NaNs
}

}  // namespace
}  // namespace gr::baselines::reference

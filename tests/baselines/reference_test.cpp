#include "baselines/reference/serial.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace gr::baselines::reference {
namespace {

using graph::EdgeList;

TEST(Reference, BfsOnPath) {
  const auto depth = bfs_depths(graph::path_graph(5), 0);
  EXPECT_EQ(depth, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Reference, BfsUnreachableIsMax) {
  const auto depth = bfs_depths(graph::two_cycles(3), 0);
  EXPECT_EQ(depth[3], ~0u);
}

TEST(Reference, SsspOnWeightedDiamond) {
  // 0->1 (1), 0->2 (5), 1->2 (1), 2->3 (1)
  EdgeList g(4);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(0, 2, 5.0f);
  g.add_edge(1, 2, 1.0f);
  g.add_edge(2, 3, 1.0f);
  const auto dist = sssp_distances(g, 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 2.0f);  // via vertex 1
  EXPECT_FLOAT_EQ(dist[3], 3.0f);
}

TEST(Reference, SsspRejectsNegativeWeights) {
  EdgeList g(2);
  g.add_edge(0, 1, -1.0f);
  EXPECT_THROW(sssp_distances(g, 0), util::CheckError);
}

TEST(Reference, PagerankSumsStayNearN) {
  const EdgeList g = graph::cycle_graph(10);
  const auto rank = pagerank(g, 30);
  double sum = 0;
  for (float r : rank) sum += r;
  // On a cycle every vertex keeps rank exactly 1.
  EXPECT_NEAR(sum, 10.0, 1e-3);
}

TEST(Reference, WeakComponentsOnTwoCycles) {
  const auto label = weak_components(graph::two_cycles(4));
  for (int v = 0; v < 4; ++v) EXPECT_EQ(label[v], label[0]);
  for (int v = 4; v < 8; ++v) EXPECT_EQ(label[v], label[4]);
  EXPECT_NE(label[0], label[4]);
}

TEST(Reference, WeakComponentsLabelIsMinimumId) {
  const auto label = weak_components(graph::two_cycles(4));
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[4], 4u);
}

TEST(Reference, MinLabelFixpointOnDirectedPath) {
  const auto label = min_label_fixpoint(graph::path_graph(4));
  EXPECT_EQ(label, (std::vector<std::uint32_t>{0, 0, 0, 0}));
}

TEST(Reference, MinLabelFixpointRespectsDirection) {
  // 1 -> 0: vertex 0 takes label 0 (already minimal); vertex 1 keeps 1
  // because nothing smaller can reach it.
  EdgeList g(2);
  g.add_edge(1, 0);
  const auto label = min_label_fixpoint(g);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 1u);
}

TEST(Reference, SpmvIdentityMatrix) {
  EdgeList g(3);
  for (graph::VertexId v = 0; v < 3; ++v) g.add_edge(v, v, 1.0f);
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(spmv(g, x), x);
}

TEST(Reference, HeatConservesUniformField) {
  const EdgeList g = graph::cycle_graph(8);
  std::vector<float> initial(8, 42.0f);
  const auto out = heat(g, initial, 5);
  for (float t : out) EXPECT_FLOAT_EQ(t, 42.0f);
}

TEST(Reference, HeatDiffusesFromHotSpot) {
  const EdgeList g = graph::grid2d(5, 5);
  std::vector<float> initial(25, 0.0f);
  initial[12] = 100.0f;  // center
  const auto out = heat(g, initial, 3);
  EXPECT_LT(out[12], 100.0f);
  EXPECT_GT(out[7], 0.0f);  // neighbour warmed up
  EXPECT_FLOAT_EQ(out[0] + 1.0f, out[0] + 1.0f);  // no NaNs
}

}  // namespace
}  // namespace gr::baselines::reference

#include "baselines/totem/totem.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference/serial.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace gr::baselines::totem {
namespace {

namespace ref = reference;
using graph::EdgeList;
using graph::VertexId;

TEST(Totem, BfsMatchesReference) {
  const EdgeList edges = graph::rmat(9, 3000, 13);
  const auto result = run_bfs(edges, 2);
  const auto expected = ref::bfs_depths(edges, 2);
  for (VertexId v = 0; v < expected.size(); ++v)
    ASSERT_EQ(result.values[v], expected[v]) << v;
  EXPECT_TRUE(result.report.converged);
}

TEST(Totem, CcMatchesReference) {
  EdgeList edges = graph::two_cycles(30);
  edges.make_undirected();
  const auto result = run_cc(edges);
  const auto expected = ref::weak_components(edges);
  for (VertexId v = 0; v < expected.size(); ++v)
    ASSERT_EQ(result.values[v], expected[v]) << v;
}

TEST(Totem, PageRankCloseToPowerIteration) {
  const EdgeList edges = graph::rmat(9, 3000, 17);
  const auto result = run_pagerank(edges, 40);
  const auto expected = ref::pagerank(edges, 40);
  double worst = 0.0;
  for (VertexId v = 0; v < expected.size(); ++v)
    worst = std::max(worst,
                     std::abs(double(result.values[v]) - expected[v]));
  EXPECT_LT(worst, 0.02);
}

TEST(Totem, HighestDegreeVerticesLandOnGpu) {
  const EdgeList edges = graph::star_graph(2000);
  Options options;
  // Room for the hub (whose adjacency alone is ~108 KB under the
  // conservative reservation) plus a fraction of the spokes.
  options.device.global_memory_bytes = 256 * 1024;
  core::ProgramInstance<PullBfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0u : PullBfs::kUnreached;
  };
  instance.frontier = core::InitialFrontier::single(0);
  instance.default_max_iterations = 10;
  Engine<PullBfs> engine(edges, std::move(instance), options);
  EXPECT_EQ(engine.placement()[0], 1);  // the hub
  std::uint64_t gpu_count = 0;
  for (std::uint8_t g : engine.placement()) gpu_count += g;
  EXPECT_LT(gpu_count, 2000u);  // spokes spill to the CPU
}

TEST(Totem, SmallGraphRunsEntirelyOnGpu) {
  const EdgeList edges = graph::rmat(8, 1200, 3);
  const auto report = pagerank_placement(edges, 10);  // 50 MB device
  EXPECT_EQ(report.gpu_vertices, edges.num_vertices());
  EXPECT_EQ(report.boundary_vertices, 0u);
  EXPECT_NEAR(report.cpu_busy_seconds, 0.0, 1e-12);
}

TEST(Totem, CpuBecomesBottleneckBeyondDeviceMemory) {
  // The paper's §2.2 critique: for graphs much larger than the device,
  // most edges stay on the CPU side, which dominates the superstep.
  const EdgeList edges = graph::make_dataset("uk-2002", 0.5);
  const auto report = pagerank_placement(edges, 5);
  EXPECT_LT(report.gpu_vertices, edges.num_vertices());
  EXPECT_GT(report.boundary_vertices, 0u);
  EXPECT_GT(report.cpu_busy_seconds, report.gpu_busy_seconds);
}

TEST(Totem, ExchangeCostsScaleWithBoundary) {
  const EdgeList big = graph::make_dataset("orkut", 0.3);
  const auto split = pagerank_placement(big, 5);
  EXPECT_GT(split.exchange_seconds, 0.0);
  const EdgeList small = graph::rmat(8, 1000, 5);
  const auto resident = pagerank_placement(small, 5);
  EXPECT_NEAR(resident.exchange_seconds / resident.iterations,
              2e-5, 2e-5);  // just the per-superstep setup latency
}

}  // namespace
}  // namespace gr::baselines::totem

// The four operator-vocabulary algorithms (triangles, coreness, label
// propagation, betweenness centrality) against their serial references,
// across generators and bundled datasets, plus the phased BC job under
// the JobScheduler.
#include "core/algorithms/advanced.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/registry.hpp"
#include "core/engine/scheduler.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace gr::algo {
namespace {

namespace ref = gr::baselines::reference;

/// The small-graph sweep every algorithm is checked on: assorted
/// generator shapes plus every bundled dataset at a test-sized scale.
std::vector<graph::EdgeList> test_graphs() {
  std::vector<graph::EdgeList> graphs;
  graphs.push_back(graph::path_graph(17));
  graphs.push_back(graph::cycle_graph(12));
  graphs.push_back(graph::star_graph(9));
  graphs.push_back(graph::grid2d(5, 4));
  graphs.push_back(graph::two_cycles(7));
  graphs.push_back(graph::rmat(7, 600, 3));
  graphs.push_back(graph::rmat(8, 2200, 7));
  for (const std::string& name : graph::in_memory_names())
    graphs.push_back(graph::make_dataset(name, /*edge_scale=*/0.002));
  return graphs;
}

TEST(AdvancedAlgorithms, TrianglesMatchSerialReferenceEverywhere) {
  for (const auto& edges : test_graphs()) {
    const auto expected = ref::triangle_counts(edges);
    const TrianglesResult got = run_triangles(edges);
    EXPECT_TRUE(got.report.converged);
    ASSERT_EQ(got.counts, expected);
  }
}

TEST(AdvancedAlgorithms, TrianglesCountKnownShapes) {
  // K4: four triangles, all rooted at their smallest vertex.
  graph::EdgeList k4(4);
  for (graph::VertexId a = 0; a < 4; ++a)
    for (graph::VertexId b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  EXPECT_EQ(run_triangles(k4).total(), 4u);
  // A cycle has none.
  EXPECT_EQ(run_triangles(graph::cycle_graph(8)).total(), 0u);
}

TEST(AdvancedAlgorithms, CorenessMatchesPeelingEverywhere) {
  for (const auto& edges : test_graphs()) {
    const auto expected = ref::coreness(edges);
    const CorenessResult got = run_coreness(edges);
    EXPECT_TRUE(got.report.converged);
    ASSERT_EQ(got.coreness, expected);
  }
}

TEST(AdvancedAlgorithms, CorenessKnownValues) {
  // K4: every vertex has core number 3; a path: 1 everywhere.
  graph::EdgeList k4(4);
  for (graph::VertexId a = 0; a < 4; ++a)
    for (graph::VertexId b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  for (std::uint32_t c : run_coreness(k4).coreness) EXPECT_EQ(c, 3u);
  for (std::uint32_t c : run_coreness(graph::path_graph(10)).coreness)
    EXPECT_EQ(c, 1u);
}

TEST(AdvancedAlgorithms, LabelPropMatchesSynchronousReference) {
  for (const auto& edges : test_graphs()) {
    const auto expected = ref::label_propagation(edges, 20);
    const LabelPropResult got = run_labelprop(edges, 20);
    ASSERT_EQ(got.label, expected);
  }
}

TEST(AdvancedAlgorithms, LabelPropHonorsRoundCount) {
  // The star oscillates: leaves and hub trade labels every round, so
  // the round count is observable (even counts differ from odd + 1).
  const auto edges = graph::star_graph(6);
  EXPECT_EQ(run_labelprop(edges, 2).label, ref::label_propagation(edges, 2));
  EXPECT_EQ(run_labelprop(edges, 4).label, ref::label_propagation(edges, 4));
}

TEST(AdvancedAlgorithms, BetweennessMatchesBrandesReferenceBitwise) {
  for (const auto& edges : test_graphs()) {
    if (edges.num_vertices() == 0) continue;
    const graph::VertexId source = edges.num_vertices() / 3;
    const auto expected = ref::betweenness(edges, source);
    const BcResult got = run_bc(edges, source);
    EXPECT_TRUE(got.report.converged);
    ASSERT_EQ(got.delta.size(), expected.size());
    for (std::size_t v = 0; v < expected.size(); ++v)
      ASSERT_EQ(got.delta[v], expected[v]) << "vertex " << v;
  }
}

TEST(AdvancedAlgorithms, BetweennessPathGraphHandChecked) {
  // Directed path 0->1->2->3: delta counts the downstream vertices.
  const BcResult got = run_bc(graph::path_graph(4), 0);
  ASSERT_EQ(got.delta.size(), 4u);
  EXPECT_EQ(got.delta[0], 3.0f);
  EXPECT_EQ(got.delta[1], 2.0f);
  EXPECT_EQ(got.delta[2], 1.0f);
  EXPECT_EQ(got.delta[3], 0.0f);
}

TEST(AdvancedAlgorithms, BetweennessReportSpansBothPhases) {
  const auto edges = graph::rmat(8, 2200, 7);
  const BcResult got = run_bc(edges, 3);
  // Forward BFS phase + backward level sweep: strictly more iterations
  // than the forward phase alone, and both phases' device time counted.
  const DobfsResult fwd = run_dobfs(edges, 3);
  EXPECT_GT(got.report.iterations, fwd.report.iterations);
  EXPECT_GT(got.report.total_seconds, fwd.report.total_seconds);
  ASSERT_EQ(got.report.history.size(), got.report.iterations);
}

TEST(AdvancedAlgorithms, RegisteredProgramsMatchWrappers) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(7, 900, 5);
  const auto& registry = core::ProgramRegistry::global();
  core::ProgramSpec spec;
  spec.source = 2;

  const auto tri = registry.at("triangles").run(edges, spec, {});
  const TrianglesResult tri_direct = run_triangles(edges);
  ASSERT_EQ(tri.values.size(), tri_direct.counts.size());
  for (std::size_t v = 0; v < tri.values.size(); ++v)
    EXPECT_EQ(tri.values[v], static_cast<double>(tri_direct.counts[v]));

  const auto cor = registry.at("coreness").run(edges, spec, {});
  const CorenessResult cor_direct = run_coreness(edges);
  for (std::size_t v = 0; v < cor.values.size(); ++v)
    EXPECT_EQ(cor.values[v], static_cast<double>(cor_direct.coreness[v]));

  const auto lab = registry.at("labelprop").run(edges, spec, {});
  const LabelPropResult lab_direct = run_labelprop(edges);
  for (std::size_t v = 0; v < lab.values.size(); ++v)
    EXPECT_EQ(lab.values[v], static_cast<double>(lab_direct.label[v]));

  const auto bc = registry.at("bc").run(edges, spec, {});
  const BcResult bc_direct = run_bc(edges, spec.source);
  for (std::size_t v = 0; v < bc.values.size(); ++v)
    EXPECT_EQ(bc.values[v], static_cast<double>(bc_direct.delta[v]));
}

TEST(AdvancedAlgorithms, PhasedBcJobServedByScheduler) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(8, 2200, 7);
  core::ProgramSpec spec;
  spec.source = 5;
  const auto solo = core::ProgramRegistry::global().at("bc").run(
      edges, spec, {});

  core::JobScheduler sched(edges, {});
  core::JobRequest request;
  request.program = "bc";
  request.spec = spec;
  const core::JobId id = sched.submit(request);
  const core::JobResult& served = sched.wait(id);
  EXPECT_EQ(served.run.value_hash, solo.value_hash);
  EXPECT_EQ(served.run.values, solo.values);
  EXPECT_EQ(served.run.report.iterations, solo.report.iterations);

  // And interleaved with another tenant on the shared device, the
  // answers are still the solo answers.
  core::JobScheduler mixed(edges, {});
  core::JobRequest bfs_request;
  bfs_request.program = "bfs";
  bfs_request.spec.source = 1;
  const core::JobId a = mixed.submit(request);
  const core::JobId b = mixed.submit(bfs_request);
  EXPECT_EQ(mixed.wait(a).run.value_hash, solo.value_hash);
  const auto bfs_solo = core::ProgramRegistry::global().at("bfs").run(
      edges, bfs_request.spec, {});
  EXPECT_EQ(mixed.wait(b).run.value_hash, bfs_solo.value_hash);
}

TEST(AdvancedAlgorithms, DeterministicAcrossThreadCounts) {
  const auto edges = graph::rmat(8, 2200, 3);
  for (const char* program : {"triangles", "coreness", "labelprop", "bc"}) {
    algo::register_builtin_programs();
    core::ProgramSpec spec;
    spec.source = 4;
    core::EngineOptions serial_opts;
    serial_opts.threads = 1;
    core::EngineOptions parallel_opts;
    parallel_opts.threads = 4;
    const auto& handle = core::ProgramRegistry::global().at(program);
    const auto serial = handle.run(edges, spec, serial_opts);
    const auto parallel = handle.run(edges, spec, parallel_opts);
    EXPECT_EQ(serial.value_hash, parallel.value_hash) << program;
    EXPECT_EQ(serial.report.total_seconds, parallel.report.total_seconds)
        << program;
  }
}

}  // namespace
}  // namespace gr::algo

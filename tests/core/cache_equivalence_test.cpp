// End-to-end contract of the residency shard cache (DESIGN.md
// residency layer): the cache is a pure traffic optimization. At any
// device-memory budget the computed values are bitwise identical; only
// H2D traffic and simulated time may change, and H2D traffic shrinks
// monotonically as the budget (and with it the cache) grows. Both
// extremes degenerate exactly: a budget too small for any cache lane
// behaves bit-for-bit like --device-cache=0 (the pre-cache streaming
// engine), and a budget that fits the whole graph is the classic
// resident mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/algorithms/algorithms.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace gr::core {
namespace {

constexpr std::uint32_t kPartitions = 12;
constexpr std::uint32_t kIterations = 10;

struct SweepRun {
  std::vector<float> rank;
  RunReport report;
};

const graph::EdgeList& sweep_graph() {
  static const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  return edges;
}

/// PageRank with a FIXED partition count so the only thing varying
/// across the sweep is the device-memory budget: `factor` scales the
/// graph's planner reservation (graph::footprint_bytes).
SweepRun run_at(double factor, double device_cache,
                std::uint32_t threads = 0) {
  const graph::EdgeList& edges = sweep_graph();
  const std::uint64_t reserved =
      graph::footprint_bytes(edges.num_vertices(), edges.num_edges());
  EngineOptions options;
  options.partitions = kPartitions;
  options.device.global_memory_bytes =
      static_cast<std::uint64_t>(static_cast<double>(reserved) * factor);
  options.device_cache = device_cache;
  options.threads = threads;
  auto result = algo::run_pagerank(edges, kIterations, options);
  // The sweep's premise: the budget never forces repartitioning, so
  // every point runs the identical shard schedule.
  EXPECT_EQ(result.report.partitions, kPartitions);
  return {std::move(result.rank), std::move(result.report)};
}

/// Smallest probed factor whose plan has neither cache lanes nor full
/// residency: the pure-streaming extreme.
double streaming_factor() {
  double factor = 0.6;
  for (int i = 0; i < 12; ++i, factor *= 0.75) {
    const SweepRun run = run_at(factor, 1.0);
    if (run.report.cache_slots == 0 && !run.report.resident_mode)
      return factor;
  }
  ADD_FAILURE() << "no streaming factor found";
  return factor;
}

/// Smallest probed factor that yields a fully-resident plan.
double resident_factor() {
  double factor = 1.05;
  for (int i = 0; i < 12; ++i, factor *= 1.25) {
    const SweepRun run = run_at(factor, 1.0);
    if (run.report.resident_mode) return factor;
  }
  ADD_FAILURE() << "no resident factor found";
  return factor;
}

/// A probed factor between the extremes with a live partial cache.
double partial_factor(double lo, double hi) {
  double factor = (lo + hi) / 2.0;
  for (int i = 0; i < 12; ++i, factor = (factor + lo) / 2.0) {
    const SweepRun run = run_at(factor, 1.0);
    if (!run.report.resident_mode && run.report.cache_slots > 0 &&
        run.report.cache_hits > 0)
      return factor;
  }
  ADD_FAILURE() << "no partial-cache factor found";
  return factor;
}

TEST(CacheEquivalence, ResultsBitwiseIdenticalAcrossCacheSizes) {
  const double lo = streaming_factor();
  const double hi = resident_factor();
  const double mid = partial_factor(lo, hi);

  const SweepRun streaming = run_at(lo, 1.0);
  const SweepRun partial = run_at(mid, 1.0);
  const SweepRun resident = run_at(hi, 1.0);

  ASSERT_EQ(streaming.rank.size(), partial.rank.size());
  ASSERT_EQ(streaming.rank.size(), resident.rank.size());
  for (std::size_t v = 0; v < streaming.rank.size(); ++v) {
    // Bitwise float equality: the cache changes WHERE uploads happen,
    // never what the kernels compute.
    ASSERT_EQ(streaming.rank[v], partial.rank[v]) << "vertex " << v;
    ASSERT_EQ(streaming.rank[v], resident.rank[v]) << "vertex " << v;
  }
  EXPECT_EQ(streaming.report.iterations, partial.report.iterations);
  EXPECT_EQ(streaming.report.iterations, resident.report.iterations);
}

TEST(CacheEquivalence, StreamingExtremeMatchesCacheOffBitwise) {
  const double lo = streaming_factor();
  const SweepRun with_cache = run_at(lo, 1.0);  // plan granted 0 lanes
  const SweepRun cache_off = run_at(lo, 0.0);   // cache disabled outright
  EXPECT_EQ(with_cache.report.cache_slots, 0u);
  EXPECT_EQ(with_cache.report.total_seconds, cache_off.report.total_seconds);
  EXPECT_EQ(with_cache.report.bytes_h2d, cache_off.report.bytes_h2d);
  EXPECT_EQ(with_cache.report.bytes_d2h, cache_off.report.bytes_d2h);
  EXPECT_EQ(with_cache.report.memcpy_ops, cache_off.report.memcpy_ops);
  EXPECT_EQ(with_cache.rank, cache_off.rank);
}

TEST(CacheEquivalence, ResidentExtremeIgnoresCacheFraction) {
  const double hi = resident_factor();
  const SweepRun with_cache = run_at(hi, 1.0);
  const SweepRun cache_off = run_at(hi, 0.0);
  EXPECT_TRUE(with_cache.report.resident_mode);
  EXPECT_TRUE(cache_off.report.resident_mode);
  EXPECT_EQ(with_cache.report.total_seconds, cache_off.report.total_seconds);
  EXPECT_EQ(with_cache.report.bytes_h2d, cache_off.report.bytes_h2d);
  EXPECT_EQ(with_cache.rank, cache_off.rank);
}

TEST(CacheEquivalence, PartialCacheSavesExactlyTheHitTraffic) {
  const double lo = streaming_factor();
  const double hi = resident_factor();
  const double mid = partial_factor(lo, hi);
  const SweepRun streaming = run_at(lo, 1.0);
  const SweepRun partial = run_at(mid, 1.0);

  EXPECT_GT(partial.report.cache_slots, 0u);
  EXPECT_GT(partial.report.cache_hits, 0u);
  EXPECT_GT(partial.report.bytes_h2d_saved, 0u);
  EXPECT_LT(partial.report.bytes_h2d, streaming.report.bytes_h2d);
  // Every hit skips the upload the streaming run would have issued, and
  // nothing else about the schedule moves: the saved bytes account for
  // the entire traffic difference.
  EXPECT_EQ(partial.report.bytes_h2d + partial.report.bytes_h2d_saved,
            streaming.report.bytes_h2d);
}

TEST(CacheEquivalence, H2dTrafficIsMonotoneInMemoryBudget) {
  const double lo = streaming_factor();
  const double hi = resident_factor();
  std::uint64_t previous = std::numeric_limits<std::uint64_t>::max();
  for (double factor :
       {lo, lo + (hi - lo) * 0.33, lo + (hi - lo) * 0.66, hi}) {
    const SweepRun run = run_at(factor, 1.0);
    EXPECT_LE(run.report.bytes_h2d, previous)
        << "H2D traffic grew when the memory budget did (factor "
        << factor << ")";
    previous = run.report.bytes_h2d;
  }
}

TEST(CacheEquivalence, ThreadCountDoesNotPerturbCacheDecisions) {
  const double lo = streaming_factor();
  const double hi = resident_factor();
  const double mid = partial_factor(lo, hi);
  const SweepRun serial = run_at(mid, 1.0, /*threads=*/1);
  const SweepRun parallel = run_at(mid, 1.0, /*threads=*/3);
  EXPECT_EQ(serial.report.total_seconds, parallel.report.total_seconds);
  EXPECT_EQ(serial.report.bytes_h2d, parallel.report.bytes_h2d);
  EXPECT_EQ(serial.report.cache_hits, parallel.report.cache_hits);
  EXPECT_EQ(serial.report.cache_evictions, parallel.report.cache_evictions);
  EXPECT_EQ(serial.rank, parallel.rank);
}

}  // namespace
}  // namespace gr::core

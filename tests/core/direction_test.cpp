// Direction-optimizing traversal: push, pull, and the Beamer auto
// switch must agree bitwise with plain BFS on the final values at any
// thread count; auto must actually pay off on a low-diameter graph; and
// streaming observability must stay byte-identical across thread
// counts.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/algorithms/advanced.hpp"
#include "core/algorithms/algorithms.hpp"
#include "core/algorithms/registry.hpp"
#include "core/engine/program_registry.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace gr::algo {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

core::EngineOptions direction_options(const std::string& direction,
                                      std::uint32_t threads = 0) {
  core::EngineOptions options;
  options.direction = direction;
  options.threads = threads;
  return options;
}

TEST(Direction, PushPullAutoBitwiseEqualAcrossThreadCounts) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 6000, 11);
  core::ProgramSpec spec;
  spec.source = 3;
  const auto& registry = core::ProgramRegistry::global();
  const auto baseline = registry.at("bfs").run(edges, spec, {});

  for (const char* direction : {"push", "pull", "auto"}) {
    for (std::uint32_t threads : {1u, 4u}) {
      const auto got = registry.at("dobfs").run(
          edges, spec, direction_options(direction, threads));
      EXPECT_EQ(got.value_hash, baseline.value_hash)
          << direction << " threads=" << threads;
      EXPECT_EQ(got.values, baseline.values)
          << direction << " threads=" << threads;
    }
    // Simulated time is part of the determinism contract: the schedule
    // for one direction mode is thread-count independent.
    const auto t1 = registry.at("dobfs").run(edges, spec,
                                             direction_options(direction, 1));
    const auto t4 = registry.at("dobfs").run(edges, spec,
                                             direction_options(direction, 4));
    EXPECT_EQ(t1.report.total_seconds, t4.report.total_seconds) << direction;
    EXPECT_EQ(t1.report.bytes_h2d, t4.report.bytes_h2d) << direction;
  }
}

TEST(Direction, PullIterationsAreMarkedInHistory) {
  const auto edges = graph::rmat(9, 6000, 11);
  const DobfsResult pull = run_dobfs(edges, 3, direction_options("pull"));
  const DobfsResult push = run_dobfs(edges, 3, direction_options("push"));
  bool any_pull = false;
  for (const auto& it : pull.report.history) any_pull |= it.pull;
  EXPECT_TRUE(any_pull);
  for (const auto& it : push.report.history) EXPECT_FALSE(it.pull);
  // Same depths either way.
  EXPECT_EQ(pull.depth, push.depth);
}

TEST(Direction, AutoSwitchesAndBeatsPushOnALowDiameterGraph) {
  // Acceptance: on at least one bundled low-diameter (Table 4 style)
  // graph the Beamer switch must win simulated time against always-push.
  bool any_win = false;
  for (const std::string& name : graph::in_memory_names()) {
    const auto edges = graph::make_dataset(name, 0.01);
    const DobfsResult push = run_dobfs(edges, 0, direction_options("push"));
    const DobfsResult aut = run_dobfs(edges, 0, direction_options("auto"));
    ASSERT_EQ(push.depth, aut.depth) << name;
    if (aut.report.total_seconds < push.report.total_seconds) {
      bool switched = false;
      for (const auto& it : aut.report.history) switched |= it.pull;
      EXPECT_TRUE(switched) << name;
      any_win = true;
    }
  }
  EXPECT_TRUE(any_win);
}

TEST(Direction, NonPullProgramsRejectPullButIgnoreNothingElse) {
  // "pull"/"auto" on a program without a pull operator is a
  // configuration error surfaced at engine construction.
  const auto edges = graph::path_graph(8);
  EXPECT_THROW(run_bfs(edges, 0, direction_options("pull")),
               util::CheckError);
  EXPECT_THROW(run_bfs(edges, 0, direction_options("auto")),
               util::CheckError);
  // Invalid spellings are rejected by validation.
  EXPECT_THROW(run_dobfs(edges, 0, direction_options("sideways")),
               util::CheckError);
  // Plain push stays available to everyone.
  EXPECT_EQ(run_bfs(edges, 0, direction_options("push")).depth,
            run_dobfs(edges, 0, direction_options("push")).depth);
}

TEST(Direction, EmptyFrontierShortCircuits) {
  // An isolated source activates nobody: the frontier empties after one
  // iteration and the run short-circuits in every direction mode,
  // without touching the unreachable remainder of the graph.
  graph::EdgeList edges(8);
  for (graph::VertexId v = 1; v + 1 < 8; ++v) edges.add_edge(v, v + 1);
  for (const char* direction : {"push", "pull", "auto"}) {
    const DobfsResult got = run_dobfs(edges, 0, direction_options(direction));
    EXPECT_EQ(got.report.iterations, 1u) << direction;
    EXPECT_TRUE(got.report.converged) << direction;
    EXPECT_EQ(got.depth[0], 0u) << direction;
    for (graph::VertexId v = 1; v < 8; ++v)
      EXPECT_EQ(got.depth[v], Dobfs::kUnreached) << direction;
  }
}

TEST(Direction, FullyDenseFrontierRunsEveryShardEveryDirection) {
  // An all-vertices frontier is the degenerate case of the Beamer
  // switch (alpha trips immediately): auto goes pull on iteration one
  // and the dense pass still produces the push-identical fixpoint.
  const auto edges = graph::cycle_graph(64);
  for (const char* direction : {"push", "auto"}) {
    core::ProgramInstance<Dobfs> instance;
    instance.init_vertex = [](graph::VertexId v) {
      return v == 0 ? 0u : Dobfs::kUnreached;
    };
    instance.frontier = core::InitialFrontier::all();
    instance.default_max_iterations = 100;
    core::Engine<Dobfs> engine(edges, std::move(instance),
                               direction_options(direction));
    engine.run();
    // Every vertex was claimed at iteration 0 by the dense seed.
    for (graph::VertexId v = 1; v < 64; ++v)
      EXPECT_EQ(engine.vertex_values()[v], 0u) << direction;
  }
}

TEST(Direction, StreamedMetricsByteIdenticalAcrossThreadCounts) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 6000, 11);
  const std::string dir = ::testing::TempDir();
  core::ProgramSpec spec;
  spec.source = 3;
  std::string previous_stream, previous_trace;
  for (std::uint32_t threads : {1u, 4u}) {
    core::EngineOptions options = direction_options("auto", threads);
    options.metrics_stream_out =
        dir + "dobfs_stream_t" + std::to_string(threads) + ".ndjson";
    options.trace_out =
        dir + "dobfs_trace_t" + std::to_string(threads) + ".json";
    core::ProgramRegistry::global().at("dobfs").run(edges, spec, options);
    const std::string stream = slurp(options.metrics_stream_out);
    const std::string trace = slurp(options.trace_out);
    EXPECT_FALSE(stream.empty());
    if (!previous_stream.empty()) {
      EXPECT_EQ(stream, previous_stream);
      EXPECT_EQ(trace, previous_trace);
    }
    previous_stream = stream;
    previous_trace = trace;
  }
}

}  // namespace
}  // namespace gr::algo

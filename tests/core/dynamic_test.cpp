#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/common.hpp"
#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace gr::core {
namespace {

namespace ref = baselines::reference;
using baselines::PullBfs;
using graph::EdgeList;
using graph::VertexId;

ProgramInstance<algo::Sssp> sssp_instance(VertexId source) {
  ProgramInstance<algo::Sssp> instance;
  instance.init_vertex = [source](VertexId v) {
    return v == source ? 0.0f : std::numeric_limits<float>::infinity();
  };
  instance.init_edge = [](float w) { return algo::Sssp::Weight{w}; };
  instance.frontier = InitialFrontier::single(source);
  instance.default_max_iterations = 100000;
  return instance;
}

ProgramInstance<PullBfs> bfs_instance(VertexId source) {
  ProgramInstance<PullBfs> instance;
  instance.init_vertex = [source](VertexId v) {
    return v == source ? 0u : PullBfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(source);
  instance.default_max_iterations = 100000;
  return instance;
}

TEST(DynamicSession, AddEdgesBeforeComputeThrows) {
  EdgeList edges = graph::path_graph(5);
  DynamicSession<PullBfs> session(std::move(edges), bfs_instance(0));
  const EdgeInsertion batch[] = {{0, 4}};
  EXPECT_THROW(session.add_edges(batch), util::CheckError);
}

TEST(DynamicSession, BfsShortcutImprovesAffectedDepths) {
  EdgeList edges = graph::path_graph(40);
  DynamicSession<PullBfs> session(std::move(edges), bfs_instance(0));
  session.recompute_full();
  EXPECT_EQ(session.values()[39], 39u);

  const EdgeInsertion batch[] = {{0, 30}};  // shortcut to vertex 30
  const RunReport incr = session.add_edges(batch);
  EXPECT_EQ(session.values()[30], 1u);
  EXPECT_EQ(session.values()[39], 10u);  // 1 + 9 more hops
  EXPECT_EQ(session.values()[29], 29u);  // untouched prefix keeps depths
  // The incremental run converges in ~10 iterations, not ~40.
  EXPECT_LT(incr.iterations, 15u);
}

TEST(DynamicSession, SsspIncrementalEqualsFullRecompute) {
  EdgeList edges = graph::erdos_renyi(300, 1800, 5);
  edges.randomize_weights(1.0f, 9.0f, 6);
  const VertexId source = 0;
  DynamicSession<algo::Sssp> session(edges, sssp_instance(source));
  session.recompute_full();

  util::Rng rng(99);
  EdgeList full = edges;  // mirror for the oracle
  for (int round = 0; round < 4; ++round) {
    std::vector<EdgeInsertion> batch;
    for (int i = 0; i < 12; ++i) {
      const auto u = static_cast<VertexId>(rng.below(300));
      auto v = static_cast<VertexId>(rng.below(300));
      if (u == v) v = (v + 1) % 300;
      const float w = static_cast<float>(rng.uniform(1.0, 9.0));
      batch.push_back({u, v, w});
      full.add_edge(u, v, w);
    }
    session.add_edges(batch);
    const auto expected = ref::sssp_distances(full, source);
    for (VertexId v = 0; v < 300; ++v) {
      if (std::isinf(expected[v])) {
        ASSERT_TRUE(std::isinf(session.values()[v])) << "round " << round;
      } else {
        ASSERT_NEAR(session.values()[v], expected[v],
                    1e-3f * (1.0f + expected[v]))
            << "round " << round << " v" << v;
      }
    }
  }
}

TEST(DynamicSession, CcBridgeMergesComponents) {
  EdgeList edges = graph::two_cycles(10);
  edges.make_undirected();
  ProgramInstance<algo::ConnectedComponents> instance;
  instance.init_vertex = [](VertexId v) { return v; };
  instance.frontier = InitialFrontier::all();
  instance.default_max_iterations = 100000;
  DynamicSession<algo::ConnectedComponents> session(std::move(edges),
                                                    std::move(instance));
  session.recompute_full();
  EXPECT_EQ(session.values()[15], 10u);  // second cycle labeled 10

  const EdgeInsertion batch[] = {{3, 13}, {13, 3}};  // bridge both ways
  session.add_edges(batch);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(session.values()[v], 0u);
}

TEST(DynamicSession, IncrementalMovesFewerBytesThanFull) {
  EdgeList edges = graph::grid2d(40, 40);
  edges.randomize_weights(1.0f, 4.0f, 2);
  EngineOptions options;
  options.device.global_memory_bytes = 64 * 1024;  // force streaming
  DynamicSession<algo::Sssp> session(edges, sssp_instance(0), options);
  const RunReport full = session.recompute_full();

  const EdgeInsertion batch[] = {{5, 900, 1.0f}};
  const RunReport incr = session.add_edges(batch);
  EXPECT_LT(incr.bytes_h2d, full.bytes_h2d);
}

TEST(DynamicSession, EmptyBatchIsNoop) {
  EdgeList edges = graph::path_graph(10);
  DynamicSession<PullBfs> session(std::move(edges), bfs_instance(0));
  session.recompute_full();
  const auto before =
      std::vector<std::uint32_t>(session.values().begin(),
                                 session.values().end());
  const RunReport report = session.add_edges({});
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_TRUE(std::equal(before.begin(), before.end(),
                         session.values().begin()));
}

}  // namespace
}  // namespace gr::core

#include "core/options.hpp"

#include <gtest/gtest.h>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::core {
namespace {

TEST(EngineOptionsValidate, DefaultsAreValid) {
  EngineOptions options;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsMoreSlotsThanPartitions) {
  EngineOptions options;
  options.partitions = 2;
  options.slots = 3;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, AcceptsSlotsWithAutoPartitionCount) {
  // partitions == 0 derives P from device capacity, which clamps the
  // slot count; any explicit K is fine then.
  EngineOptions options;
  options.partitions = 0;
  options.slots = 7;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsZeroDeviceMemory) {
  EngineOptions options;
  options.device.global_memory_bytes = 0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, RejectsSpillWithoutDiskBandwidth) {
  EngineOptions options;
  options.host_memory_bytes = 1 << 20;  // spill enabled...
  options.disk_bandwidth = 0.0;         // ...but no disk to spill to
  EXPECT_THROW(options.validate(), util::CheckError);
  options.disk_bandwidth = -1.0;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.disk_bandwidth = 500e6;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsNonPositiveHostBandwidth) {
  EngineOptions options;
  options.host_bandwidth = 0.0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, RejectsNonPositiveConcurrentKernels) {
  EngineOptions options;
  options.device.max_concurrent_kernels = 0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, EngineConstructionValidates) {
  const auto edges = graph::path_graph(16);
  EngineOptions options;
  options.partitions = 2;
  options.slots = 4;  // invalid: more resident slots than shards
  EXPECT_THROW(algo::run_bfs(edges, 0, options), util::CheckError);
}

}  // namespace
}  // namespace gr::core

#include "core/options.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::core {
namespace {

TEST(EngineOptionsValidate, DefaultsAreValid) {
  EngineOptions options;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsMoreSlotsThanPartitions) {
  EngineOptions options;
  options.partitions = 2;
  options.slots = 3;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, AcceptsSlotsWithAutoPartitionCount) {
  // partitions == 0 derives P from device capacity, which clamps the
  // slot count; any explicit K is fine then.
  EngineOptions options;
  options.partitions = 0;
  options.slots = 7;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsZeroDeviceMemory) {
  EngineOptions options;
  options.device.global_memory_bytes = 0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, RejectsSpillWithoutDiskBandwidth) {
  EngineOptions options;
  options.host_memory_bytes = 1 << 20;  // spill enabled...
  options.disk_bandwidth = 0.0;         // ...but no disk to spill to
  EXPECT_THROW(options.validate(), util::CheckError);
  options.disk_bandwidth = -1.0;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.disk_bandwidth = 500e6;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsNonPositiveHostBandwidth) {
  EngineOptions options;
  options.host_bandwidth = 0.0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, RejectsNonPositiveConcurrentKernels) {
  EngineOptions options;
  options.device.max_concurrent_kernels = 0;
  EXPECT_THROW(options.validate(), util::CheckError);
}

TEST(EngineOptionsValidate, RejectsDeviceCacheOutsideUnitInterval) {
  EngineOptions options;
  options.device_cache = -0.1;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.device_cache = 1.5;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.device_cache = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(options.validate(), util::CheckError);
  for (double fraction : {0.0, 0.5, 1.0}) {
    options.device_cache = fraction;
    EXPECT_NO_THROW(options.validate()) << fraction;
  }
}

TEST(EngineOptionsValidate, RejectsBudgetWithZeroUsableSlots) {
  // An explicit partition count bypasses the planner's own capacity
  // check, so engine construction must reject a device budget whose
  // post-headroom remainder cannot hold a single shard slot — with a
  // message naming the fix instead of an opaque allocation failure.
  const auto edges = graph::path_graph(256);
  EngineOptions options;
  options.partitions = 4;
  options.device.global_memory_bytes = 1024;
  EXPECT_NO_THROW(options.validate());  // per-field checks still pass
  try {
    algo::run_bfs(edges, 0, options);
    FAIL() << "expected zero-usable-slots rejection";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("zero usable slots"),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineOptionsValidate, RejectsUnknownAdmissionPolicy) {
  EngineOptions options;
  options.sched_admission = "fifo";
  EXPECT_THROW(options.validate(), util::CheckError);
  for (const char* policy : {"shared", "cache-fair", "stream-only"}) {
    options.sched_admission = policy;
    options.device_cache = 0.5;  // cache-fair needs a non-zero cache
    EXPECT_NO_THROW(options.validate()) << policy;
  }
}

TEST(EngineOptionsValidate, RejectsCacheFairAdmissionWithCacheDisabled) {
  // cache-fair arbitrates residency-cache lanes between tenants; with
  // device_cache=0 there are no lanes to arbitrate, so the combination
  // is contradictory and the message must say which knob to change.
  EngineOptions options;
  options.sched_admission = "cache-fair";
  options.device_cache = 0.0;
  try {
    options.validate();
    FAIL() << "expected cache-fair/device_cache contradiction";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cache-fair"), std::string::npos) << what;
    EXPECT_NE(what.find("device_cache"), std::string::npos) << what;
  }
  options.device_cache = 0.25;
  EXPECT_NO_THROW(options.validate());
  // stream-only is fine with the cache disabled — it never grants lanes.
  options.sched_admission = "stream-only";
  options.device_cache = 0.0;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsInvalidSnapshotInterval) {
  EngineOptions options;
  options.metrics_out = "metrics.json";
  options.metrics_snapshot_interval = -1.0;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.metrics_snapshot_interval =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(options.validate(), util::CheckError);
  options.metrics_snapshot_interval = 0.5;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, RejectsSnapshotIntervalWithoutMetricsOut) {
  // Snapshot files are numbered variants of metrics_out; without a base
  // path there is nowhere to write them.
  EngineOptions options;
  options.metrics_snapshot_interval = 1.0;
  EXPECT_THROW(options.validate(), util::CheckError);
  options.metrics_out = "metrics.json";
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptionsValidate, EngineConstructionValidates) {
  const auto edges = graph::path_graph(16);
  EngineOptions options;
  options.partitions = 2;
  options.slots = 4;  // invalid: more resident slots than shards
  EXPECT_THROW(algo::run_bfs(edges, 0, options), util::CheckError);
}

}  // namespace
}  // namespace gr::core

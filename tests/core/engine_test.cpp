#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr::core {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

EngineOptions tiny_device(std::uint64_t bytes) {
  EngineOptions options;
  options.device.global_memory_bytes = bytes;
  return options;
}

struct GraphCase {
  const char* name;
  EdgeList edges;
  VertexId source;
};

std::vector<GraphCase> test_graphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"path", graph::path_graph(64), 0});
  cases.push_back({"star", graph::star_graph(50), 3});
  cases.push_back({"grid", graph::grid2d(12, 9), 5});
  cases.push_back({"rmat", graph::rmat(9, 3000, 17), 1});
  cases.push_back({"er", graph::erdos_renyi(400, 3500, 23), 7});
  cases.push_back({"two_cycles", graph::two_cycles(20), 2});
  return cases;
}

// --- BFS -------------------------------------------------------------

class EngineOptionVariants
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {
 protected:
  // (async_spray, frontier_mgmt, phase_fusion, force_streaming)
  EngineOptions options() const {
    EngineOptions o;
    o.async_spray = std::get<0>(GetParam());
    o.frontier_management = std::get<1>(GetParam());
    o.phase_fusion = std::get<2>(GetParam());
    if (std::get<3>(GetParam()))
      o.device.global_memory_bytes = 192 * 1024;  // forces sharding
    return o;
  }
};

TEST_P(EngineOptionVariants, BfsMatchesReferenceOnAllGraphs) {
  for (const GraphCase& tc : test_graphs()) {
    const auto result = algo::run_bfs(tc.edges, tc.source, options());
    const auto expected = ref::bfs_depths(tc.edges, tc.source);
    ASSERT_EQ(result.depth.size(), expected.size()) << tc.name;
    for (VertexId v = 0; v < expected.size(); ++v)
      ASSERT_EQ(result.depth[v], expected[v]) << tc.name << " vertex " << v;
    EXPECT_TRUE(result.report.converged) << tc.name;
  }
}

TEST_P(EngineOptionVariants, SsspMatchesDijkstraOnAllGraphs) {
  for (GraphCase& tc : test_graphs()) {
    tc.edges.randomize_weights(1.0f, 16.0f, 77);
    const auto result = algo::run_sssp(tc.edges, tc.source, options());
    const auto expected = ref::sssp_distances(tc.edges, tc.source);
    ASSERT_EQ(result.distance.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        ASSERT_TRUE(std::isinf(result.distance[v])) << tc.name << " " << v;
      } else {
        ASSERT_NEAR(result.distance[v], expected[v],
                    1e-3f * (1.0f + expected[v]))
            << tc.name << " vertex " << v;
      }
    }
  }
}

TEST_P(EngineOptionVariants, CcMatchesUnionFindOnUndirectedGraphs) {
  for (GraphCase& tc : test_graphs()) {
    tc.edges.make_undirected();
    const auto result = algo::run_cc(tc.edges, options());
    const auto expected = ref::weak_components(tc.edges);
    ASSERT_EQ(result.label.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v)
      ASSERT_EQ(result.label[v], expected[v]) << tc.name << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Toggles, EngineOptionVariants,
    ::testing::Values(std::tuple{true, true, true, false},
                      std::tuple{true, true, true, true},
                      std::tuple{false, true, true, true},
                      std::tuple{true, false, true, true},
                      std::tuple{true, true, false, true},
                      std::tuple{false, false, false, true}),
    [](const auto& info) {
      std::string name;
      name += std::get<0>(info.param) ? "async" : "sync";
      name += std::get<1>(info.param) ? "_frontier" : "_nofrontier";
      name += std::get<2>(info.param) ? "_fused" : "_unfused";
      name += std::get<3>(info.param) ? "_streaming" : "_resident";
      return name;
    });

// --- other algorithms -------------------------------------------------

TEST(EngineAlgo, CcDirectedMatchesMinLabelFixpoint) {
  const EdgeList edges = graph::rmat(8, 1200, 3);
  const auto result = algo::run_cc(edges, tiny_device(128 * 1024));
  const auto expected = ref::min_label_fixpoint(edges);
  for (VertexId v = 0; v < expected.size(); ++v)
    ASSERT_EQ(result.label[v], expected[v]) << v;
}

TEST(EngineAlgo, PageRankCloseToPowerIteration) {
  const EdgeList edges = graph::rmat(9, 4000, 5);
  const auto result = algo::run_pagerank(edges, 40, tiny_device(256 * 1024));
  const auto expected = ref::pagerank(edges, 40);
  double worst = 0.0;
  for (VertexId v = 0; v < expected.size(); ++v)
    worst = std::max(worst, std::abs(double(result.rank[v]) - expected[v]));
  // The frontier-converged GAS variant stops refining vertices whose
  // delta fell below epsilon; allow a small absolute gap.
  EXPECT_LT(worst, 0.05) << "max rank deviation";
}

TEST(EngineAlgo, PageRankOnStarConcentratesRankAtHub) {
  const EdgeList edges = graph::star_graph(100);
  const auto result = algo::run_pagerank(edges, 30);
  for (VertexId v = 1; v < 100; ++v)
    EXPECT_GT(result.rank[0], result.rank[v]);
}

TEST(EngineAlgo, SpmvMatchesReference) {
  EdgeList edges = graph::erdos_renyi(300, 2500, 9);
  edges.randomize_weights(0.0f, 2.0f, 13);
  std::vector<float> x(300);
  for (VertexId v = 0; v < 300; ++v) x[v] = 0.01f * static_cast<float>(v);
  const auto result = algo::run_spmv(edges, x, tiny_device(96 * 1024));
  const auto expected = ref::spmv(edges, x);
  for (VertexId v = 0; v < 300; ++v)
    ASSERT_NEAR(result.y[v], expected[v], 1e-3f + 1e-4f * std::abs(expected[v]))
        << v;
  EXPECT_EQ(result.report.iterations, 1u);
}

TEST(EngineAlgo, HeatMatchesReference) {
  const EdgeList edges = graph::grid2d(10, 10);
  std::vector<float> initial(100, 0.0f);
  initial[0] = 100.0f;  // hot corner
  const auto result = algo::run_heat(edges, initial, 12,
                                     tiny_device(96 * 1024));
  const auto expected = ref::heat(edges, initial, 12);
  for (VertexId v = 0; v < 100; ++v)
    ASSERT_NEAR(result.temperature[v], expected[v], 1e-2f) << v;
}

// --- scatter phase ----------------------------------------------------

// Exercises the full scatter round trip: BFS-style traversal whose
// scatter stamps every out-edge of a newly settled vertex.
struct StampEdges {
  using VertexData = std::uint32_t;
  struct Stamp {
    std::uint32_t count;
  };
  using EdgeData = Stamp;
  using GatherResult = Empty;
  static constexpr bool has_gather = false;
  static constexpr bool has_scatter = true;

  static bool apply(VertexData& depth, const GatherResult&,
                    const IterationContext& ctx) {
    if (depth != ~0u) return false;
    depth = ctx.iteration;
    return true;
  }
  static void scatter(const VertexData&, EdgeData& edge) { edge.count += 1; }
};

void check_stamp_edges(EngineOptions options) {
  EdgeList edges = graph::grid2d(8, 8);
  edges.randomize_weights(1.0f, 2.0f, 1);  // weights unused, init needs them
  const VertexId source = 0;
  ProgramInstance<StampEdges> instance;
  instance.init_vertex = [source](VertexId v) {
    return v == source ? 0u : ~0u;
  };
  instance.init_edge = [](float) { return StampEdges::Stamp{0}; };
  instance.frontier = InitialFrontier::single(source);
  instance.default_max_iterations = 100;
  Engine<StampEdges> engine(edges, std::move(instance), options);
  const auto report = engine.run();
  EXPECT_TRUE(report.converged);

  // Every vertex is reached exactly once, so each edge's stamp count is
  // exactly 1 (its source settled once; the grid is fully reachable).
  for (graph::EdgeId i = 0; i < edges.num_edges(); ++i)
    ASSERT_EQ(engine.edge_value(i).count, 1u) << "edge " << i;
}

TEST(EngineScatter, StampsRouteBackToCanonicalState) {
  check_stamp_edges(tiny_device(64 * 1024));
}

TEST(EngineScatter, StampsWorkUnfusedAndSync) {
  EngineOptions options = tiny_device(64 * 1024);
  options.phase_fusion = false;
  options.async_spray = false;
  check_stamp_edges(options);
}

TEST(EngineScatter, StampsWorkResident) { check_stamp_edges({}); }

// --- engine behaviour -------------------------------------------------

TEST(EngineBehaviour, SmallGraphRunsResident) {
  const EdgeList edges = graph::path_graph(100);
  const auto result = algo::run_bfs(edges, 0);
  EXPECT_TRUE(result.report.resident_mode);
  EXPECT_EQ(result.report.partitions, 1u);
}

TEST(EngineBehaviour, TinyDeviceForcesStreaming) {
  const EdgeList edges = graph::rmat(9, 5000, 2);
  const auto result = algo::run_bfs(edges, 0, tiny_device(16 * 1024));
  EXPECT_FALSE(result.report.resident_mode);
  EXPECT_GT(result.report.partitions, 1u);
  EXPECT_GT(result.report.bytes_h2d, 0u);
}

TEST(EngineBehaviour, HistoryTracksFrontierSizes) {
  const EdgeList edges = graph::path_graph(20);
  const auto result = algo::run_bfs(edges, 0);
  ASSERT_EQ(result.report.history.size(), result.report.iterations);
  // On a path, exactly one vertex is active each iteration.
  for (const IterationStats& it : result.report.history)
    EXPECT_EQ(it.active_vertices, 1u);
  EXPECT_EQ(result.report.iterations, 20u);
}

TEST(EngineBehaviour, FrontierManagementSkipsShards) {
  const EdgeList edges = graph::path_graph(512);
  EngineOptions options = tiny_device(8 * 1024);
  const auto result = algo::run_bfs(edges, 0, options);
  ASSERT_GT(result.report.partitions, 2u);
  std::uint64_t skipped = 0;
  for (const IterationStats& it : result.report.history)
    skipped += it.shards_skipped;
  EXPECT_GT(skipped, 0u);
}

TEST(EngineBehaviour, FrontierManagementReducesTransferBytes) {
  const EdgeList edges = graph::grid2d(40, 40);
  EngineOptions with = tiny_device(24 * 1024);
  EngineOptions without = with;
  without.frontier_management = false;
  const auto a = algo::run_bfs(edges, 0, with);
  const auto b = algo::run_bfs(edges, 0, without);
  // The BFS wave only touches a band of intervals per iteration, so
  // frontier management must cut transfer volume noticeably.
  EXPECT_LT(a.report.bytes_h2d,
            static_cast<std::uint64_t>(0.8 * b.report.bytes_h2d));
}

TEST(EngineBehaviour, PhaseFusionReducesTransferBytes) {
  EdgeList edges = graph::rmat(8, 2000, 7);
  edges.randomize_weights(1.0f, 4.0f, 3);
  EngineOptions fused = tiny_device(128 * 1024);
  EngineOptions unfused = fused;
  unfused.phase_fusion = false;
  const auto a = algo::run_sssp(edges, 0, fused);
  const auto b = algo::run_sssp(edges, 0, unfused);
  EXPECT_LT(a.report.bytes_h2d, b.report.bytes_h2d);
}

TEST(EngineBehaviour, AsyncSprayIsFasterThanSynchronous) {
  const EdgeList edges = graph::rmat(10, 9000, 19);
  EngineOptions async = tiny_device(160 * 1024);
  EngineOptions sync = async;
  sync.async_spray = false;
  const auto a = algo::run_bfs(edges, 0, async);
  const auto b = algo::run_bfs(edges, 0, sync);
  EXPECT_LT(a.report.total_seconds, b.report.total_seconds);
}

TEST(EngineBehaviour, MemcpyDominatesStreamingExecution) {
  // The paper's §6.2.3 observation: memcpy dominates out-of-memory
  // execution. At unit-test graph sizes per-op latencies blur the
  // picture, so shrink the link bandwidth to put the run firmly in the
  // transfer-bound regime the big benches operate in and check the
  // accounting agrees.
  EdgeList edges = graph::rmat(10, 9000, 19);
  edges.randomize_weights(1.0f, 4.0f, 3);
  EngineOptions options = tiny_device(160 * 1024);
  options.device.pcie_bandwidth = 0.05e9;
  const auto result = algo::run_sssp(edges, 0, options);
  EXPECT_FALSE(result.report.resident_mode);
  EXPECT_GT(result.report.memcpy_fraction(), 0.6);
}

TEST(EngineBehaviour, DeterministicAcrossRuns) {
  const EdgeList edges = graph::rmat(8, 1500, 4);
  const auto a = algo::run_bfs(edges, 0, tiny_device(128 * 1024));
  const auto b = algo::run_bfs(edges, 0, tiny_device(128 * 1024));
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_DOUBLE_EQ(a.report.total_seconds, b.report.total_seconds);
  EXPECT_EQ(a.report.bytes_h2d, b.report.bytes_h2d);
}

TEST(EngineBehaviour, RunTwiceThrows) {
  const EdgeList edges = graph::path_graph(10);
  ProgramInstance<algo::Bfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0u : algo::Bfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(0);
  Engine<algo::Bfs> engine(edges, std::move(instance));
  engine.run();
  EXPECT_THROW(engine.run(), util::CheckError);
}

TEST(EngineBehaviour, MaxIterationsCapIsRespected) {
  const EdgeList edges = graph::path_graph(100);
  EngineOptions options;
  options.max_iterations = 5;
  const auto result = algo::run_bfs(edges, 0, options);
  EXPECT_EQ(result.report.iterations, 5u);
  EXPECT_FALSE(result.report.converged);
}

TEST(EngineBehaviour, UnreachableVerticesStayUnreached) {
  const EdgeList edges = graph::two_cycles(8);  // vertex 8.. unreachable
  const auto result = algo::run_bfs(edges, 0);
  for (VertexId v = 8; v < 16; ++v)
    EXPECT_EQ(result.depth[v], algo::Bfs::kUnreached);
}

TEST(EngineBehaviour, PartitionOverrideIsHonored) {
  const EdgeList edges = graph::erdos_renyi(200, 1500, 6);
  EngineOptions options;
  options.partitions = 5;
  const auto result = algo::run_bfs(edges, 0, options);
  EXPECT_EQ(result.report.partitions, 5u);
}

// Counts every observer callback and cross-checks the engine's own
// report, proving the seam fires at each structural boundary.
struct CountingObserver final : ExecutionObserver {
  int runs = 0;
  std::uint32_t iterations = 0;
  std::uint64_t passes = 0;
  std::uint64_t shards_enqueued = 0;
  std::uint64_t shards_planned = 0;
  RunReport last_report;

  void on_run_begin(std::uint32_t, std::uint32_t, bool) override {
    ++runs;
  }
  void on_iteration_begin(std::uint32_t, std::uint64_t) override {
    ++iterations;
  }
  void on_transfer_plan(std::uint32_t, const TransferPlan& plan) override {
    shards_planned += plan.processed();
  }
  void on_pass_begin(const Pass&, std::uint32_t) override { ++passes; }
  void on_shard_enqueued(const Pass&, std::uint32_t,
                         const ShardWork& work) override {
    ++shards_enqueued;
    EXPECT_GT(work.active_vertices, 0u);
  }
  void on_run_end(const RunReport& report) override { last_report = report; }
};

TEST(EngineBehaviour, ObserverSeesEveryStructuralBoundary) {
  const EdgeList edges = graph::erdos_renyi(400, 4000, 9);
  core::ProgramInstance<algo::Bfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0u : algo::Bfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(0);
  instance.default_max_iterations = edges.num_vertices() + 1;
  Engine<algo::Bfs> engine(edges, std::move(instance),
                           tiny_device(1 << 20));
  CountingObserver observer;
  engine.set_observer(&observer);
  const RunReport report = engine.run();

  EXPECT_EQ(observer.runs, 1);
  EXPECT_EQ(observer.iterations, report.iterations);
  EXPECT_EQ(observer.last_report.total_seconds, report.total_seconds);
  // Every pass in every iteration processes each planned shard once.
  std::uint64_t processed = 0;
  for (const IterationStats& it : report.history)
    processed += it.shards_processed;
  EXPECT_EQ(observer.shards_planned, processed);
  EXPECT_GT(observer.passes, 0u);
  EXPECT_EQ(observer.shards_enqueued,
            processed * (observer.passes / report.iterations));
}

}  // namespace
}  // namespace gr::core

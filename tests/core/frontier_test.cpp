#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gr::core {
namespace {

TEST(FrontierManager, ActivateAllCountsEverything) {
  const auto edges = graph::path_graph(10);
  const auto pg = PartitionedGraph::build(edges, 3);
  FrontierManager fm(pg);
  fm.activate_all();
  EXPECT_EQ(fm.active_vertices(), 10u);
  EXPECT_FALSE(fm.empty());
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    total += fm.shard_active_vertices(p);
    EXPECT_TRUE(fm.shard_has_work(p));
  }
  EXPECT_EQ(total, 10u);
}

TEST(FrontierManager, ActivateSingleIsolatesOneShard) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 4);
  FrontierManager fm(pg);
  const graph::VertexId source = 7;
  fm.activate_single(source);
  EXPECT_EQ(fm.active_vertices(), 1u);
  const std::uint32_t home = pg.shard_of(source);
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(fm.shard_has_work(p), p == home);
  EXPECT_TRUE(fm.is_active(source));
  EXPECT_FALSE(fm.is_active(0));
}

TEST(FrontierManager, ActiveEdgeSumsMatchDegrees) {
  const auto edges = graph::star_graph(20);  // hub 0 has degree 19+19
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);
  const std::uint32_t home = pg.shard_of(0);
  EXPECT_EQ(fm.shard_active_in_edges(home), 19u);
  EXPECT_EQ(fm.shard_active_out_edges(home), 19u);
}

TEST(FrontierManager, AdvancePromotesNextAndClearsIt) {
  const auto edges = graph::path_graph(6);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);
  fm.mark_next(3);
  fm.mark_next(4);
  EXPECT_EQ(fm.advance(), 2u);
  EXPECT_TRUE(fm.is_active(3));
  EXPECT_TRUE(fm.is_active(4));
  EXPECT_FALSE(fm.is_active(0));
  // next is cleared by advance.
  EXPECT_EQ(fm.advance(), 0u);
  EXPECT_TRUE(fm.empty());
}

TEST(FrontierManager, NextBitsSpanIsWritable) {
  const auto edges = graph::path_graph(5);
  const auto pg = PartitionedGraph::build(edges, 1);
  FrontierManager fm(pg);
  auto bits = fm.next_bits();
  bits[2] = 1;
  fm.advance();
  EXPECT_TRUE(fm.is_active(2));
  EXPECT_EQ(fm.active_vertices(), 1u);
}

TEST(FrontierManager, OutOfRangeSourceThrows) {
  const auto edges = graph::path_graph(5);
  const auto pg = PartitionedGraph::build(edges, 1);
  FrontierManager fm(pg);
  EXPECT_THROW(fm.activate_single(99), util::CheckError);
}

}  // namespace
}  // namespace gr::core

#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace gr::core {
namespace {

TEST(FrontierManager, ActivateAllCountsEverything) {
  const auto edges = graph::path_graph(10);
  const auto pg = PartitionedGraph::build(edges, 3);
  FrontierManager fm(pg);
  fm.activate_all();
  EXPECT_EQ(fm.active_vertices(), 10u);
  EXPECT_FALSE(fm.empty());
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    total += fm.shard_active_vertices(p);
    EXPECT_TRUE(fm.shard_has_work(p));
  }
  EXPECT_EQ(total, 10u);
}

TEST(FrontierManager, ActivateSingleIsolatesOneShard) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 4);
  FrontierManager fm(pg);
  const graph::VertexId source = 7;
  fm.activate_single(source);
  EXPECT_EQ(fm.active_vertices(), 1u);
  const std::uint32_t home = pg.shard_of(source);
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(fm.shard_has_work(p), p == home);
  EXPECT_TRUE(fm.is_active(source));
  EXPECT_FALSE(fm.is_active(0));
}

TEST(FrontierManager, ActiveEdgeSumsMatchDegrees) {
  const auto edges = graph::star_graph(20);  // hub 0 has degree 19+19
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);
  const std::uint32_t home = pg.shard_of(0);
  EXPECT_EQ(fm.shard_active_in_edges(home), 19u);
  EXPECT_EQ(fm.shard_active_out_edges(home), 19u);
}

TEST(FrontierManager, AdvancePromotesNextAndClearsIt) {
  const auto edges = graph::path_graph(6);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);
  fm.mark_next(3);
  fm.mark_next(4);
  EXPECT_EQ(fm.advance(), 2u);
  EXPECT_TRUE(fm.is_active(3));
  EXPECT_TRUE(fm.is_active(4));
  EXPECT_FALSE(fm.is_active(0));
  // next is cleared by advance.
  EXPECT_EQ(fm.advance(), 0u);
  EXPECT_TRUE(fm.empty());
}

TEST(FrontierManager, NextBitsSpanIsWritable) {
  const auto edges = graph::path_graph(5);
  const auto pg = PartitionedGraph::build(edges, 1);
  FrontierManager fm(pg);
  auto bits = fm.next_bits();
  bits[2] = 1;
  fm.advance();
  EXPECT_TRUE(fm.is_active(2));
  EXPECT_EQ(fm.active_vertices(), 1u);
}

TEST(FrontierManager, OutOfRangeSourceThrows) {
  const auto edges = graph::path_graph(5);
  const auto pg = PartitionedGraph::build(edges, 1);
  FrontierManager fm(pg);
  EXPECT_THROW(fm.activate_single(99), util::CheckError);
}

TEST(FrontierManager, WordViewMirrorsByteBits) {
  // 70 vertices spans two 64-bit words with a ragged tail.
  const auto edges = graph::path_graph(70);
  const auto pg = PartitionedGraph::build(edges, 3);
  FrontierManager fm(pg);
  fm.activate_set(std::vector<graph::VertexId>{0, 1, 63, 64, 69});
  const auto words = fm.current_words();
  ASSERT_EQ(words.size(), 2u);
  for (graph::VertexId v = 0; v < 70; ++v) {
    const bool word_bit = (words[v >> 6] >> (v & 63)) & 1u;
    EXPECT_EQ(word_bit, fm.is_active(v)) << "vertex " << v;
  }
  EXPECT_EQ(words[0], (1ull << 0) | (1ull << 1) | (1ull << 63));
  EXPECT_EQ(words[1], (1ull << 0) | (1ull << 5));
  // advance() rebuilds the view along with the aggregates.
  fm.mark_next(2);
  fm.advance();
  EXPECT_EQ(fm.current_words()[0], 1ull << 2);
  EXPECT_EQ(fm.current_words()[1], 0ull);
}

TEST(FrontierManager, DenseWordViewSetsEveryBit) {
  const auto edges = graph::path_graph(70);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_all();
  const auto words = fm.current_words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], ~0ull);
  EXPECT_EQ(words[1], (1ull << (70 - 64)) - 1);  // tail bits only
}

TEST(FrontierManager, VisitedTrackingFoldsConsumedFrontiers) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 3);
  FrontierManager fm(pg);
  fm.enable_visited_tracking();
  EXPECT_TRUE(fm.visited_tracking());
  fm.activate_single(0);
  // The current frontier is excluded from the pull candidates (it gets
  // stamped this iteration) but only counts as visited once consumed.
  EXPECT_FALSE(fm.is_visited(0));
  EXPECT_EQ(fm.unvisited_vertices(), 11u);
  fm.mark_next(1);
  fm.advance();
  // 0 was consumed; 1 is the new frontier (excluded but not yet
  // consumed); 10 pull candidates remain.
  EXPECT_TRUE(fm.is_visited(0));
  EXPECT_FALSE(fm.is_visited(1));
  EXPECT_EQ(fm.unvisited_vertices(), 10u);
  // Per-shard unvisited counts sum to the total.
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 3; ++p) total += fm.shard_unvisited(p);
  EXPECT_EQ(total, 10u);
}

TEST(FrontierManager, UnvisitedInEdgesPriceThePullScan) {
  // Star: hub 0 out-edges to every leaf, so each leaf has in-degree 1
  // and the hub in-degree is n-1 (generator adds both directions).
  const auto edges = graph::star_graph(8);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.enable_visited_tracking();
  fm.activate_single(0);
  // Unvisited = 7 leaves, each with exactly one in-edge (from the hub).
  EXPECT_EQ(fm.unvisited_vertices(), 7u);
  EXPECT_EQ(fm.unvisited_in_edges(), 7u);
  // Push cost of this frontier: the hub's 7 out-edges.
  EXPECT_EQ(fm.active_out_edges(), 7u);
}

TEST(FrontierManager, PullWorkCoversFrontierAndUnvisitedShards) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 4);
  FrontierManager fm(pg);
  fm.enable_visited_tracking();
  fm.activate_all();
  // Everything visited, nothing unvisited: every shard still has pull
  // work because it holds frontier vertices to stamp.
  EXPECT_EQ(fm.unvisited_vertices(), 0u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(fm.shard_has_pull_work(p));
    EXPECT_EQ(fm.shard_unvisited(p), 0u);
  }
  // Drain the frontier: no shard has pull work left.
  fm.advance();
  EXPECT_TRUE(fm.empty());
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_FALSE(fm.shard_has_pull_work(p));
}

}  // namespace
}  // namespace gr::core

// Fused multi-source programs (core/algorithms/fused.hpp): a fused
// K-source job must produce, per lane, results bitwise-identical to the
// K independent registry runs — at any thread count and cache size.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms/registry.hpp"
#include "core/engine/engine_core.hpp"
#include "core/engine/job.hpp"
#include "core/engine/program_registry.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::core {
namespace {

EngineOptions fusion_options(std::uint32_t threads, double device_cache) {
  EngineOptions options;
  options.threads = threads;
  options.device_cache = device_cache;
  options.device.global_memory_bytes = 256 * 1024;  // forces sharding
  return options;
}

/// Drives the widest-enough registered fusion of `program` over `specs`
/// to completion and checks every lane against its independent run.
void expect_fused_matches_solo(const graph::EdgeList& edges,
                               const std::string& program,
                               const std::vector<ProgramSpec>& specs,
                               const EngineOptions& options) {
  const auto fusions = ProgramRegistry::global().fusions(program);
  ASSERT_FALSE(fusions.empty()) << program;
  const FusionHandle* chosen = fusions.back();
  for (const FusionHandle* fusion : fusions) {
    if (fusion->width >= specs.size()) {
      chosen = fusion;
      break;
    }
  }
  ASSERT_GE(chosen->width, specs.size());

  std::unique_ptr<EngineJob> job =
      chosen->make(edges, specs, options, EngineEnv{});
  ASSERT_EQ(job->width(), specs.size());
  job->begin();
  while (job->step()) {
  }
  const RunReport& report = job->finish();
  EXPECT_TRUE(report.converged);

  const ProgramHandle& handle = ProgramRegistry::global().at(program);
  for (std::size_t lane = 0; lane < specs.size(); ++lane) {
    const ProgramRunResult solo = handle.run(edges, specs[lane], options);
    const ProgramRunResult fused =
        job->result(static_cast<std::uint32_t>(lane));
    EXPECT_EQ(fused.value_hash, solo.value_hash)
        << program << " lane " << lane << " (width " << chosen->width
        << ", threads " << options.threads << ", cache "
        << options.device_cache << ")";
    ASSERT_EQ(fused.values.size(), solo.values.size());
    for (std::size_t v = 0; v < solo.values.size(); ++v)
      EXPECT_EQ(fused.values[v], solo.values[v]) << "vertex " << v;
  }
}

std::vector<ProgramSpec> sources_to_specs(
    std::initializer_list<graph::VertexId> sources) {
  std::vector<ProgramSpec> specs;
  for (graph::VertexId s : sources) {
    ProgramSpec spec;
    spec.source = s;
    specs.push_back(spec);
  }
  return specs;
}

class FusionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {
 protected:
  EngineOptions options() const {
    return fusion_options(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(FusionSweep, FusedBfsLanesMatchIndependentRuns) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 3000, 17);
  // Exactly the width-4 variant.
  expect_fused_matches_solo(edges, "bfs",
                            sources_to_specs({1, 5, 9, 13}), options());
}

TEST_P(FusionSweep, FusedBfsPaddedLanesStayInert) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 3000, 17);
  // 3 specs in the width-4 variant: the padded lane must not perturb
  // the live ones.
  expect_fused_matches_solo(edges, "bfs", sources_to_specs({2, 7, 11}),
                            options());
}

TEST_P(FusionSweep, FusedSsspLanesMatchIndependentRuns) {
  algo::register_builtin_programs();
  auto edges = graph::rmat(9, 3000, 17);
  edges.randomize_weights(1.0f, 9.0f, 6);
  // 6 specs select the width-16 variant (10 padded lanes). 16 float
  // lanes are 64 bytes/vertex, so this width needs a bigger device than
  // the width-4 cases to fit its shards at all.
  EngineOptions opts = options();
  opts.device.global_memory_bytes = 1024 * 1024;
  expect_fused_matches_solo(edges, "sssp",
                            sources_to_specs({0, 2, 4, 6, 8, 10}), opts);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndCache, FusionSweep,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(0.0, 1.0)));

TEST(Fusion, RegisteredWidthsAscendPerProgram) {
  algo::register_builtin_programs();
  for (const char* program : {"bfs", "sssp"}) {
    const auto fusions = ProgramRegistry::global().fusions(program);
    ASSERT_EQ(fusions.size(), 3u) << program;
    EXPECT_EQ(fusions[0]->width, 4u);
    EXPECT_EQ(fusions[1]->width, 16u);
    EXPECT_EQ(fusions[2]->width, 64u);
  }
  // No fused variants registered for the all-vertex programs.
  EXPECT_TRUE(ProgramRegistry::global().fusions("pagerank").empty());
}

TEST(Fusion, Width64PackMatchesIndependentRuns) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 3000, 17);
  // 17 specs overflow width 16 and select the W=64 bitset-frontier
  // variant (47 padded lanes). 64 lanes are 256 bytes/vertex, so give
  // the device room to hold the shards at all.
  std::vector<ProgramSpec> specs;
  for (graph::VertexId s = 0; s < 17; ++s) {
    ProgramSpec spec;
    spec.source = s * 7 % edges.num_vertices();
    specs.push_back(spec);
  }
  EngineOptions opts = fusion_options(2, 0.5);
  opts.device.global_memory_bytes = 4 * 1024 * 1024;
  expect_fused_matches_solo(edges, "bfs", specs, opts);
}

TEST(Fusion, DuplicateSourcesShareALaneValue) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(8, 1200, 3);
  // Two lanes rooted at the same vertex must agree bitwise.
  expect_fused_matches_solo(edges, "bfs", sources_to_specs({4, 4, 9, 9}),
                            fusion_options(2, 0.5));
}

}  // namespace
}  // namespace gr::core

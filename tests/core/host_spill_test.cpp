// SSD-backed host extension (§8 future work (2)): when the graph exceeds
// host memory, shard uploads fault their spilled fraction in from disk.
#include <gtest/gtest.h>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr::core {
namespace {

using graph::EdgeList;

EngineOptions streaming_options() {
  EngineOptions options;
  options.device.global_memory_bytes = 256 * 1024;
  return options;
}

TEST(HostSpill, NoSpillWhenHostFits) {
  const EdgeList edges = graph::rmat(10, 8000, 3);
  EngineOptions options = streaming_options();
  options.host_memory_bytes = 1ull << 30;
  const auto result = algo::run_bfs(edges, 0, options);
  EXPECT_DOUBLE_EQ(result.report.host_spill_fraction, 0.0);
}

TEST(HostSpill, ConstrainedHostReportsSpillFraction) {
  const EdgeList edges = graph::rmat(10, 8000, 3);
  EngineOptions options = streaming_options();
  options.host_memory_bytes = 128 * 1024;  // far below the graph
  const auto result = algo::run_bfs(edges, 0, options);
  EXPECT_GT(result.report.host_spill_fraction, 0.5);
  EXPECT_LT(result.report.host_spill_fraction, 1.0);
}

TEST(HostSpill, SpillSlowsStreamingButNotResults) {
  EdgeList edges = graph::rmat(10, 8000, 3);
  edges.randomize_weights(1.0f, 8.0f, 7);
  EngineOptions fast = streaming_options();
  EngineOptions spilled = fast;
  spilled.host_memory_bytes = 96 * 1024;
  const auto a = algo::run_sssp(edges, 0, fast);
  const auto b = algo::run_sssp(edges, 0, spilled);
  EXPECT_GT(b.report.total_seconds, a.report.total_seconds * 1.4);
  ASSERT_EQ(a.distance.size(), b.distance.size());
  for (std::size_t v = 0; v < a.distance.size(); ++v)
    ASSERT_EQ(a.distance[v], b.distance[v]) << v;
}

TEST(HostSpill, SlowerDiskMeansSlowerRun) {
  const EdgeList edges = graph::rmat(10, 8000, 3);
  EngineOptions ssd = streaming_options();
  ssd.host_memory_bytes = 96 * 1024;
  EngineOptions hdd = ssd;
  hdd.disk_bandwidth = 80e6;
  const auto a = algo::run_bfs(edges, 0, ssd);
  const auto b = algo::run_bfs(edges, 0, hdd);
  EXPECT_GT(b.report.total_seconds, a.report.total_seconds);
}

TEST(HostSpill, UnlimitedHostIsDefault) {
  const EdgeList edges = graph::path_graph(100);
  const auto result = algo::run_bfs(edges, 0);
  EXPECT_DOUBLE_EQ(result.report.host_spill_fraction, 0.0);
}

}  // namespace
}  // namespace gr::core

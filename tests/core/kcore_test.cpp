#include <gtest/gtest.h>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr::algo {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

TEST(KCore, CompleteGraphIsItsOwnCore) {
  const EdgeList g = graph::complete_graph(6);  // every degree = 5
  const auto core5 = run_kcore(g, 5);
  for (bool alive : core5.in_core) EXPECT_TRUE(alive);
  const auto core6 = run_kcore(g, 6);
  for (bool alive : core6.in_core) EXPECT_FALSE(alive);
}

TEST(KCore, StarCollapsesAtKTwo) {
  EdgeList g = graph::star_graph(20);  // spokes have degree 1
  const auto core2 = run_kcore(g, 2);
  for (bool alive : core2.in_core) EXPECT_FALSE(alive);  // hub dies too
  const auto core1 = run_kcore(g, 1);
  for (bool alive : core1.in_core) EXPECT_TRUE(alive);
}

TEST(KCore, GridHasTwoCoreButNotThreeCore) {
  const EdgeList g = graph::grid2d(6, 6);  // interior degree 4, corner 2
  const auto core2 = run_kcore(g, 2);
  for (bool alive : core2.in_core) EXPECT_TRUE(alive);
  const auto core3 = run_kcore(g, 3);
  // Peeling corners cascades: a grid has no 3-core.
  for (bool alive : core3.in_core) EXPECT_FALSE(alive);
}

TEST(KCore, PeelingCascades) {
  // A triangle with a tail: the tail peels away at k=2, triangle stays.
  EdgeList g(6);
  auto undirected = [&](VertexId a, VertexId b) {
    g.add_edge(a, b);
    g.add_edge(b, a);
  };
  undirected(0, 1);
  undirected(1, 2);
  undirected(2, 0);
  undirected(2, 3);
  undirected(3, 4);
  undirected(4, 5);
  const auto core2 = run_kcore(g, 2);
  EXPECT_TRUE(core2.in_core[0]);
  EXPECT_TRUE(core2.in_core[1]);
  EXPECT_TRUE(core2.in_core[2]);
  EXPECT_FALSE(core2.in_core[3]);
  EXPECT_FALSE(core2.in_core[4]);
  EXPECT_FALSE(core2.in_core[5]);
}

class KCoreSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>> {};

TEST_P(KCoreSweep, MatchesReferencePeeling) {
  EdgeList g = graph::rmat(9, 2200, GetParam().first);
  g.make_undirected();
  const auto k = static_cast<std::uint32_t>(GetParam().second);
  const auto result = run_kcore(g, k);
  const auto expected = ref::kcore_membership(g, k);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(result.in_core[v], expected[v]) << "k=" << k << " v" << v;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, KCoreSweep,
    ::testing::Values(std::pair{1ull, 2}, std::pair{1ull, 4},
                      std::pair{2ull, 3}, std::pair{3ull, 5},
                      std::pair{4ull, 8}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.first) + "_k" +
             std::to_string(info.param.second);
    });

TEST(KCore, StreamingMatchesResident) {
  EdgeList g = graph::rmat(10, 7000, 7);
  g.make_undirected();
  core::EngineOptions streaming;
  streaming.device.global_memory_bytes = 128 * 1024;
  const auto a = run_kcore(g, 4, streaming);
  const auto b = run_kcore(g, 4);
  EXPECT_FALSE(a.report.resident_mode);
  EXPECT_EQ(a.in_core, b.in_core);
}

TEST(KCore, RejectsZeroK) {
  const EdgeList g = graph::path_graph(4);
  EXPECT_THROW(run_kcore(g, 0), util::CheckError);
}

}  // namespace
}  // namespace gr::algo

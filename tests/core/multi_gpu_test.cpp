#include "core/multi_gpu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/common.hpp"
#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr::core {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

MultiGpuOptions gpus(std::uint32_t count) {
  MultiGpuOptions options;
  options.num_devices = count;
  options.device.global_memory_bytes = 512 * 1024;
  return options;
}

class DeviceCounts : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeviceCounts, BfsMatchesReference) {
  const EdgeList edges = graph::rmat(10, 6000, 3);
  ProgramInstance<algo::Bfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 1 ? 0u : algo::Bfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(1);
  instance.default_max_iterations = edges.num_vertices() + 1;
  MultiGpuEngine<algo::Bfs> engine(edges, std::move(instance),
                                   gpus(GetParam()));
  const MultiGpuReport report = engine.run();
  EXPECT_TRUE(report.converged);
  const auto expected = ref::bfs_depths(edges, 1);
  for (VertexId v = 0; v < expected.size(); ++v)
    ASSERT_EQ(engine.vertex_values()[v], expected[v]) << v;
}

TEST_P(DeviceCounts, SsspMatchesReference) {
  EdgeList edges = graph::erdos_renyi(500, 4000, 7);
  edges.randomize_weights(1.0f, 8.0f, 5);
  ProgramInstance<algo::Sssp> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0.0f : std::numeric_limits<float>::infinity();
  };
  instance.init_edge = [](float w) { return algo::Sssp::Weight{w}; };
  instance.frontier = InitialFrontier::single(0);
  instance.default_max_iterations = edges.num_vertices() + 1;
  MultiGpuEngine<algo::Sssp> engine(edges, std::move(instance),
                                    gpus(GetParam()));
  engine.run();
  const auto expected = ref::sssp_distances(edges, 0);
  for (VertexId v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v]))
      ASSERT_TRUE(std::isinf(engine.vertex_values()[v])) << v;
    else
      ASSERT_NEAR(engine.vertex_values()[v], expected[v],
                  1e-3f * (1.0f + expected[v]))
          << v;
  }
}

TEST_P(DeviceCounts, CcMatchesFixpoint) {
  const EdgeList edges = graph::rmat(9, 3000, 11);
  ProgramInstance<algo::ConnectedComponents> instance;
  instance.init_vertex = [](VertexId v) { return v; };
  instance.frontier = InitialFrontier::all();
  instance.default_max_iterations = edges.num_vertices() + 1;
  MultiGpuEngine<algo::ConnectedComponents> engine(edges,
                                                   std::move(instance),
                                                   gpus(GetParam()));
  engine.run();
  const auto expected = ref::min_label_fixpoint(edges);
  for (VertexId v = 0; v < expected.size(); ++v)
    ASSERT_EQ(engine.vertex_values()[v], expected[v]) << v;
}

INSTANTIATE_TEST_SUITE_P(OneToFour, DeviceCounts,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MultiGpu, ShardsSpreadAcrossDevices) {
  const EdgeList edges = graph::rmat(10, 8000, 3);
  ProgramInstance<algo::Bfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0u : algo::Bfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(0);
  MultiGpuEngine<algo::Bfs> engine(edges, std::move(instance), gpus(2));
  std::uint32_t on[2] = {0, 0};
  for (std::uint32_t p = 0; p < engine.partitioned().num_shards(); ++p)
    ++on[engine.device_of_shard(p)];
  EXPECT_GT(on[0], 0u);
  EXPECT_GT(on[1], 0u);
}

TEST(MultiGpu, ExchangeCostsAppearWithMultipleDevices) {
  const EdgeList edges = graph::rmat(10, 8000, 5);
  auto make = [&](std::uint32_t d) {
    ProgramInstance<algo::ConnectedComponents> instance;
    instance.init_vertex = [](VertexId v) { return v; };
    instance.frontier = InitialFrontier::all();
    instance.default_max_iterations = edges.num_vertices();
    MultiGpuEngine<algo::ConnectedComponents> engine(
        edges, std::move(instance), gpus(d));
    return engine.run();
  };
  const auto single = make(1);
  const auto dual = make(2);
  EXPECT_GT(dual.exchange_seconds, 0.0);
  // Replica broadcast means MORE total bytes with more devices...
  EXPECT_GT(dual.bytes_h2d, single.bytes_h2d);
  EXPECT_EQ(dual.num_devices, 2u);
  EXPECT_EQ(dual.iterations, single.iterations);
}

TEST(MultiGpu, TwoDevicesSpeedUpTransferBoundPageRank) {
  // Dense PageRank over a streaming-sized graph: per-iteration shard
  // traffic splits across two PCIe links, so wall time drops despite the
  // replica exchange.
  const EdgeList edges = graph::rmat(11, 40000, 9);
  auto run = [&](std::uint32_t d) {
    const auto out_deg = edges.out_degrees();
    ProgramInstance<algo::PageRank> instance;
    instance.init_vertex = [&out_deg](VertexId v) {
      return algo::PageRank::Vertex{
          1.0f,
          out_deg[v] == 0 ? 0.0f : 1.0f / static_cast<float>(out_deg[v])};
    };
    instance.frontier = InitialFrontier::all();
    instance.default_max_iterations = 15;
    MultiGpuOptions options = gpus(d);
    options.device.global_memory_bytes = 256 * 1024;
    MultiGpuEngine<algo::PageRank> engine(edges, std::move(instance),
                                          options);
    return engine.run();
  };
  const auto single = run(1);
  const auto dual = run(2);
  EXPECT_LT(dual.total_seconds, single.total_seconds);
}

TEST(MultiGpu, HistoryAndReportAreConsistent) {
  const EdgeList edges = graph::path_graph(200);
  ProgramInstance<algo::Bfs> instance;
  instance.init_vertex = [](VertexId v) {
    return v == 0 ? 0u : algo::Bfs::kUnreached;
  };
  instance.frontier = InitialFrontier::single(0);
  instance.default_max_iterations = 300;
  MultiGpuEngine<algo::Bfs> engine(edges, std::move(instance), gpus(2));
  const auto report = engine.run();
  EXPECT_EQ(report.history.size(), report.iterations);
  EXPECT_GE(report.total_seconds, report.exchange_seconds);
  for (const IterationStats& it : report.history)
    EXPECT_EQ(it.shards_processed + it.shards_skipped, report.partitions);
}

}  // namespace
}  // namespace gr::core

// Bitwise determinism of the parallel functional backend: any worker
// count must produce byte-identical results AND byte-identical
// simulated-time reports. This is the contract documented in
// util/thread_pool.hpp — disjoint block writes, deterministic block
// boundaries, relaxed atomics only for idempotent/commutative updates.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "core/engine.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace gr::core {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

template <typename T>
void expect_bitwise_equal(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
      << what << " differs between worker counts";
}

void expect_same_report(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  // Simulated times must be bitwise equal, not merely close: the analytic
  // models never see the host thread count.
  EXPECT_EQ(0, std::memcmp(&a.total_seconds, &b.total_seconds,
                           sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&a.memcpy_seconds, &b.memcpy_seconds,
                           sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&a.kernel_seconds, &b.kernel_seconds,
                           sizeof(double)));
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d);
  EXPECT_EQ(a.bytes_d2h, b.bytes_d2h);
  EXPECT_EQ(a.kernels_launched, b.kernels_launched);
  EXPECT_EQ(a.memcpy_ops, b.memcpy_ops);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].active_vertices, b.history[i].active_vertices);
    EXPECT_EQ(a.history[i].shards_processed, b.history[i].shards_processed);
    EXPECT_EQ(a.history[i].shards_skipped, b.history[i].shards_skipped);
  }
}

EdgeList skewed_graph() {
  // R-MAT: skewed degrees so edge-weighted grain splitting actually
  // produces uneven vertex blocks.
  EdgeList edges = graph::rmat(10, 12'000, 99);
  edges.randomize_weights(1.0f, 32.0f, 1234);
  return edges;
}

EngineOptions streaming_options(std::uint32_t threads) {
  EngineOptions options;
  options.device.global_memory_bytes = 256 * 1024;  // force sharding
  options.threads = threads;
  return options;
}

constexpr std::uint32_t kWorkerSweep[] = {1, 2, 4, 7};

TEST(ParallelDeterminism, PageRankBitwiseIdenticalAcrossWorkerCounts) {
  const EdgeList edges = skewed_graph();
  const auto base = algo::run_pagerank(edges, 20, streaming_options(1));
  for (std::uint32_t threads : kWorkerSweep) {
    const auto run = algo::run_pagerank(edges, 20,
                                        streaming_options(threads));
    expect_bitwise_equal(base.rank, run.rank, "pagerank values");
    expect_same_report(base.report, run.report);
  }
}

TEST(ParallelDeterminism, BfsBitwiseIdenticalAcrossWorkerCounts) {
  const EdgeList edges = skewed_graph();
  const VertexId source = 1;
  const auto base = algo::run_bfs(edges, source, streaming_options(1));
  for (std::uint32_t threads : kWorkerSweep) {
    const auto run = algo::run_bfs(edges, source, streaming_options(threads));
    expect_bitwise_equal(base.depth, run.depth, "bfs depths");
    expect_same_report(base.report, run.report);
  }
}

TEST(ParallelDeterminism, SsspValuesAndEdgeStateIdentical) {
  const EdgeList edges = skewed_graph();
  const auto base = algo::run_sssp(edges, 1, streaming_options(1));
  const auto wide = algo::run_sssp(edges, 1, streaming_options(6));
  expect_bitwise_equal(base.distance, wide.distance, "sssp distances");
  expect_same_report(base.report, wide.report);
}

TEST(ParallelDeterminism, PartitionLayoutIdenticalAcrossWorkerCounts) {
  const EdgeList edges = skewed_graph();
  util::ThreadPool::set_shared_workers(0);
  const PartitionedGraph base = PartitionedGraph::build(edges, 7);
  for (std::size_t workers : {1u, 3u, 6u}) {
    util::ThreadPool::set_shared_workers(workers);
    const PartitionedGraph par = PartitionedGraph::build(edges, 7);
    ASSERT_EQ(base.num_shards(), par.num_shards());
    for (std::uint32_t p = 0; p < base.num_shards(); ++p) {
      const ShardTopology& a = base.shard(p);
      const ShardTopology& b = par.shard(p);
      EXPECT_EQ(a.interval.begin, b.interval.begin);
      EXPECT_EQ(a.interval.end, b.interval.end);
      EXPECT_EQ(a.canonical_base, b.canonical_base);
      expect_bitwise_equal(a.in_offsets, b.in_offsets, "in_offsets");
      expect_bitwise_equal(a.in_src, b.in_src, "in_src");
      expect_bitwise_equal(a.in_orig_edge, b.in_orig_edge, "in_orig_edge");
      expect_bitwise_equal(a.out_offsets, b.out_offsets, "out_offsets");
      expect_bitwise_equal(a.out_dst, b.out_dst, "out_dst");
      expect_bitwise_equal(a.out_canonical_pos, b.out_canonical_pos,
                           "out_canonical_pos");
    }
    par.validate();
  }
  util::ThreadPool::set_shared_workers(2);
}

TEST(ParallelDeterminism, ReferenceBaselinesIdenticalAcrossWorkerCounts) {
  const EdgeList edges = skewed_graph();
  std::vector<float> x(edges.num_vertices());
  for (VertexId v = 0; v < edges.num_vertices(); ++v)
    x[v] = 0.25f + static_cast<float>(v % 17);

  util::ThreadPool::set_shared_workers(0);
  const auto pr_base = ref::pagerank(edges, 15);
  const auto spmv_base = ref::spmv(edges, x);
  const auto heat_base = ref::heat(edges, x, 10);

  for (std::size_t workers : {2u, 5u}) {
    util::ThreadPool::set_shared_workers(workers);
    expect_bitwise_equal(pr_base, ref::pagerank(edges, 15), "ref pagerank");
    expect_bitwise_equal(spmv_base, ref::spmv(edges, x), "ref spmv");
    expect_bitwise_equal(heat_base, ref::heat(edges, x, 10), "ref heat");
  }
  util::ThreadPool::set_shared_workers(2);
}

}  // namespace
}  // namespace gr::core

#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace gr::core {
namespace {

using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;

TEST(BalancedEdgeCut, SinglePartitionCoversEverything) {
  std::vector<EdgeId> weights = {3, 1, 4, 1, 5};
  const auto cut = balanced_edge_cut(weights, 1);
  EXPECT_EQ(cut, (std::vector<VertexId>{0, 5}));
}

TEST(BalancedEdgeCut, ProducesRequestedIntervalCount) {
  std::vector<EdgeId> weights(100, 2);
  const auto cut = balanced_edge_cut(weights, 7);
  ASSERT_EQ(cut.size(), 8u);
  EXPECT_EQ(cut.front(), 0u);
  EXPECT_EQ(cut.back(), 100u);
  EXPECT_TRUE(std::is_sorted(cut.begin(), cut.end()));
}

TEST(BalancedEdgeCut, UniformWeightsSplitEvenly) {
  std::vector<EdgeId> weights(100, 1);
  const auto cut = balanced_edge_cut(weights, 4);
  for (std::size_t i = 0; i + 1 < cut.size(); ++i)
    EXPECT_NEAR(cut[i + 1] - cut[i], 25.0, 1.0);
}

TEST(BalancedEdgeCut, SkewedWeightIsolatedInOwnInterval) {
  // One vertex owning almost all edges should end up nearly alone.
  std::vector<EdgeId> weights(10, 1);
  weights[0] = 1000;
  const auto cut = balanced_edge_cut(weights, 3);
  EXPECT_EQ(cut[1], 1u);  // first interval is just the heavy vertex
}

TEST(BalancedEdgeCut, EveryIntervalNonEmptyEvenWithZeroWeights) {
  std::vector<EdgeId> weights(6, 0);
  const auto cut = balanced_edge_cut(weights, 6);
  for (std::size_t i = 0; i + 1 < cut.size(); ++i)
    EXPECT_EQ(cut[i + 1] - cut[i], 1u);
}

class PartitionBuildParam
    : public ::testing::TestWithParam<std::pair<const char*, std::uint32_t>> {
 protected:
  EdgeList make_graph() const {
    const std::string name = GetParam().first;
    if (name == "rmat") return graph::rmat(10, 8000, 11);
    if (name == "grid") return graph::grid2d(40, 40);
    if (name == "star") return graph::star_graph(500);
    if (name == "path") return graph::path_graph(300);
    return graph::erdos_renyi(700, 9000, 5);
  }
};

TEST_P(PartitionBuildParam, InvariantsHold) {
  const EdgeList edges = make_graph();
  const auto pg = PartitionedGraph::build(edges, GetParam().second);
  EXPECT_EQ(pg.num_shards(), GetParam().second);
  pg.validate();
}

TEST_P(PartitionBuildParam, EveryEdgeInExactlyOneCscAndCsrSlot) {
  const EdgeList edges = make_graph();
  const auto pg = PartitionedGraph::build(edges, GetParam().second);
  std::vector<int> csc_seen(edges.num_edges(), 0);
  std::vector<int> csr_seen(edges.num_edges(), 0);
  for (const ShardTopology& shard : pg.shards()) {
    for (EdgeId orig : shard.in_orig_edge) csc_seen[orig]++;
    // CSR slots are checked through their canonical positions: each
    // canonical position appears exactly once across all CSR arrays.
    for (EdgeId pos : shard.out_canonical_pos) csr_seen[pos]++;
  }
  for (EdgeId i = 0; i < edges.num_edges(); ++i) {
    EXPECT_EQ(csc_seen[i], 1) << "edge " << i;
    EXPECT_EQ(csr_seen[i], 1) << "canonical slot " << i;
  }
}

TEST_P(PartitionBuildParam, CscSlotsGroupByDestination) {
  const EdgeList edges = make_graph();
  const auto pg = PartitionedGraph::build(edges, GetParam().second);
  for (const ShardTopology& shard : pg.shards()) {
    for (VertexId lv = 0; lv < shard.interval.size(); ++lv) {
      for (EdgeId e = shard.in_offsets[lv]; e < shard.in_offsets[lv + 1];
           ++e) {
        const graph::Edge& orig = edges.edge(shard.in_orig_edge[e]);
        EXPECT_EQ(orig.dst, shard.interval.begin + lv);
        EXPECT_EQ(orig.src, shard.in_src[e]);
      }
    }
  }
}

TEST_P(PartitionBuildParam, CsrCanonicalPositionsRouteToSameEdge) {
  const EdgeList edges = make_graph();
  const auto pg = PartitionedGraph::build(edges, GetParam().second);
  // Reconstruct: canonical position -> original edge via CSC; then each
  // CSR slot's canonical position must identify an edge with matching
  // src/dst.
  std::vector<EdgeId> orig_of_canonical(edges.num_edges());
  for (const ShardTopology& shard : pg.shards())
    for (EdgeId slot = 0; slot < shard.in_edge_count(); ++slot)
      orig_of_canonical[shard.canonical_base + slot] =
          shard.in_orig_edge[slot];
  for (const ShardTopology& shard : pg.shards()) {
    for (VertexId lv = 0; lv < shard.interval.size(); ++lv) {
      for (EdgeId e = shard.out_offsets[lv]; e < shard.out_offsets[lv + 1];
           ++e) {
        const graph::Edge& orig =
            edges.edge(orig_of_canonical[shard.out_canonical_pos[e]]);
        EXPECT_EQ(orig.src, shard.interval.begin + lv);
        EXPECT_EQ(orig.dst, shard.out_dst[e]);
      }
    }
  }
}

TEST_P(PartitionBuildParam, ShardsAreReasonablyBalanced) {
  const EdgeList edges = make_graph();
  const std::uint32_t p = GetParam().second;
  if (p < 2) return;
  const auto pg = PartitionedGraph::build(edges, p);
  const double mean =
      2.0 * static_cast<double>(edges.num_edges()) / p;
  for (const ShardTopology& shard : pg.shards()) {
    const double load = static_cast<double>(shard.in_edge_count() +
                                            shard.out_edge_count());
    // Greedy cut bound: one vertex's full degree of overshoot.
    EXPECT_LE(load, mean + 2.0 * static_cast<double>(edges.num_edges()))
        << "degenerate shard";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionBuildParam,
    ::testing::Values(std::pair{"rmat", 1u}, std::pair{"rmat", 4u},
                      std::pair{"rmat", 13u}, std::pair{"grid", 5u},
                      std::pair{"star", 3u}, std::pair{"path", 8u},
                      std::pair{"er", 6u}),
    [](const auto& info) {
      return std::string(info.param.first) + "_p" +
             std::to_string(info.param.second);
    });

TEST(PartitionedGraph, ShardOfMapsEveryVertex) {
  const EdgeList edges = graph::erdos_renyi(500, 4000, 2);
  const auto pg = PartitionedGraph::build(edges, 7);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    const std::uint32_t p = pg.shard_of(v);
    EXPECT_TRUE(pg.shard(p).interval.contains(v));
  }
}

TEST(PartitionedGraph, DegreesMatchEdgeList) {
  const EdgeList edges = graph::rmat(9, 4000, 3);
  const auto pg = PartitionedGraph::build(edges, 4);
  const auto in = edges.in_degrees();
  const auto out = edges.out_degrees();
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    EXPECT_EQ(pg.in_degrees()[v], in[v]);
    EXPECT_EQ(pg.out_degrees()[v], out[v]);
  }
}

TEST(PartitionedGraph, RejectsMorePartitionsThanVertices) {
  const EdgeList edges = graph::path_graph(4);
  EXPECT_THROW(PartitionedGraph::build(edges, 10), util::CheckError);
}

TEST(PartitionedGraph, CustomPartitionLogicIsHonored) {
  const EdgeList edges = graph::path_graph(10);
  // Plug-in logic: fixed split at vertex 2 regardless of weights.
  PartitionLogic logic = [](std::span<const EdgeId> w, std::uint32_t p) {
    GR_CHECK(p == 2);
    return std::vector<VertexId>{0, 2, static_cast<VertexId>(w.size())};
  };
  const auto pg = PartitionedGraph::build(edges, 2, logic);
  EXPECT_EQ(pg.shard(0).interval.end, 2u);
  pg.validate();
}

TEST(ChoosePartitionCount, SmallGraphGetsOnePartition) {
  PartitionPlanInput input;
  input.num_vertices = 1000;
  input.num_edges = 5000;
  input.static_bytes = 10'000;
  input.bytes_per_in_edge = 12;
  input.bytes_per_out_edge = 12;
  input.bytes_per_interval_vertex = 16;
  input.device_capacity = 100'000'000;
  EXPECT_EQ(choose_partition_count(input), 1u);
}

TEST(ChoosePartitionCount, LargeGraphSplitsUntilSlotsFit) {
  PartitionPlanInput input;
  input.num_vertices = 100'000;
  input.num_edges = 10'000'000;
  input.static_bytes = 1'000'000;
  input.bytes_per_in_edge = 16;
  input.bytes_per_out_edge = 16;
  input.bytes_per_interval_vertex = 16;
  input.device_capacity = 50'000'000;
  input.slots = 2;
  const std::uint32_t p = choose_partition_count(input);
  EXPECT_GT(p, 1u);
  // Feasibility: slots * average shard fits in the available budget.
  const double available = 0.95 * 50e6 - 1e6;
  const double shard =
      (10e6 * 32.0 + 100e3 * 16.0) / p * 1.3;
  EXPECT_LE(input.slots * shard, available * 1.02);
}

TEST(ChoosePartitionCount, StaticOverflowThrows) {
  PartitionPlanInput input;
  input.num_vertices = 1000;
  input.num_edges = 1000;
  input.static_bytes = 200;
  input.device_capacity = 100;
  EXPECT_THROW(choose_partition_count(input), util::CheckError);
}

TEST(ChoosePartitionCount, MoreSlotsMeansMorePartitions) {
  PartitionPlanInput input;
  input.num_vertices = 100'000;
  input.num_edges = 10'000'000;
  input.bytes_per_in_edge = 16;
  input.bytes_per_out_edge = 16;
  input.bytes_per_interval_vertex = 16;
  input.device_capacity = 50'000'000;
  input.slots = 2;
  const auto p2 = choose_partition_count(input);
  input.slots = 4;
  const auto p4 = choose_partition_count(input);
  EXPECT_GT(p4, p2);
}

}  // namespace
}  // namespace gr::core

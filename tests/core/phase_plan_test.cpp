#include "core/phase_plan.hpp"

#include <gtest/gtest.h>

namespace gr::core {
namespace {

bool has_kernel(const Pass& pass, PhaseKernel k) {
  for (PhaseKernel kernel : pass.kernels)
    if (kernel == k) return true;
  return false;
}

TEST(PhasePlan, FusedGatherProgramHasTwoPasses) {
  // SSSP/CC/PR shape: gather defined, scatter absent.
  const auto plan = make_phase_plan(true, false, false, true);
  ASSERT_EQ(plan.passes.size(), 2u);
  const Pass& gather = plan.passes[0];
  EXPECT_TRUE(gather.needs_in_edges);
  EXPECT_FALSE(gather.needs_out_edges);
  EXPECT_TRUE(has_kernel(gather, PhaseKernel::kGatherMap));
  EXPECT_TRUE(has_kernel(gather, PhaseKernel::kGatherReduce));
  const Pass& update = plan.passes[1];
  EXPECT_FALSE(update.needs_in_edges);
  EXPECT_TRUE(update.needs_out_edges);
  EXPECT_TRUE(has_kernel(update, PhaseKernel::kApply));
  EXPECT_TRUE(has_kernel(update, PhaseKernel::kFrontierActivate));
  EXPECT_FALSE(has_kernel(update, PhaseKernel::kScatter));
}

TEST(PhasePlan, FusedApplyOnlyProgramIsSinglePass) {
  // BFS shape (paper §5.3): apply fused with frontierActivate; in-edges
  // eliminated entirely.
  const auto plan = make_phase_plan(false, false, false, true);
  ASSERT_EQ(plan.passes.size(), 1u);
  EXPECT_FALSE(plan.uses_in_edges());
  const Pass& pass = plan.passes[0];
  EXPECT_TRUE(has_kernel(pass, PhaseKernel::kApply));
  EXPECT_TRUE(has_kernel(pass, PhaseKernel::kFrontierActivate));
  EXPECT_TRUE(pass.needs_out_edges);  // out-edges move regardless
}

TEST(PhasePlan, FusedScatterProgramRoundTrips) {
  const auto plan = make_phase_plan(true, true, true, true);
  ASSERT_EQ(plan.passes.size(), 2u);
  EXPECT_TRUE(plan.passes[0].moves_edge_state);
  const Pass& update = plan.passes[1];
  EXPECT_TRUE(has_kernel(update, PhaseKernel::kScatter));
  EXPECT_TRUE(update.scatter_round_trip);
}

TEST(PhasePlan, UnfusedMovesWholeShardPerPhase) {
  const auto plan = make_phase_plan(true, true, true, false);
  // gatherMap, gatherReduce, apply, scatter, frontierActivate.
  ASSERT_EQ(plan.passes.size(), 5u);
  for (const Pass& pass : plan.passes) {
    EXPECT_EQ(pass.kernels.size(), 1u);
    EXPECT_TRUE(pass.needs_in_edges);
    EXPECT_TRUE(pass.needs_out_edges);
    EXPECT_TRUE(pass.moves_edge_state);
  }
  EXPECT_TRUE(plan.passes[3].scatter_round_trip);
}

TEST(PhasePlan, UnfusedGatherlessStillMovesWholeShard) {
  const auto plan = make_phase_plan(false, false, false, false);
  ASSERT_EQ(plan.passes.size(), 2u);  // apply, frontierActivate
  EXPECT_TRUE(plan.uses_in_edges());  // no elimination when disabled
}

TEST(PhasePlan, FrontierActivateAlwaysPresent) {
  for (bool gather : {false, true})
    for (bool scatter : {false, true})
      for (bool fusion : {false, true}) {
        const auto plan = make_phase_plan(gather, scatter, scatter, fusion);
        bool found = false;
        for (const Pass& pass : plan.passes)
          found = found || has_kernel(pass, PhaseKernel::kFrontierActivate);
        EXPECT_TRUE(found);
      }
}

TEST(PhasePlan, FusionNeverIncreasesPassCount) {
  for (bool gather : {false, true})
    for (bool scatter : {false, true}) {
      const auto fused = make_phase_plan(gather, scatter, scatter, true);
      const auto unfused = make_phase_plan(gather, scatter, scatter, false);
      EXPECT_LE(fused.passes.size(), unfused.passes.size());
    }
}

}  // namespace
}  // namespace gr::core

#include "core/engine/program_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/algorithms/algorithms.hpp"
#include "core/algorithms/registry.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::core {
namespace {

EngineOptions small_options() {
  EngineOptions options;  // bench-default 50 MB device
  return options;
}

TEST(ProgramRegistry, BuiltinProgramsAreRegistered) {
  algo::register_builtin_programs();
  const auto& registry = ProgramRegistry::global();
  for (const char* name : {"bfs", "sssp", "pagerank", "cc"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.at(name).description.empty());
  }
}

TEST(ProgramRegistry, UnknownNameThrowsWithKnownNames) {
  algo::register_builtin_programs();
  EXPECT_EQ(ProgramRegistry::global().find("no-such-program"), nullptr);
  try {
    ProgramRegistry::global().at("no-such-program");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    // The error lists the registered names so typos are debuggable.
    EXPECT_NE(std::string(e.what()).find("bfs"), std::string::npos);
  }
}

TEST(ProgramRegistry, NamesAreSortedAndAddReplaces) {
  algo::register_builtin_programs();
  auto& registry = ProgramRegistry::global();
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  const std::size_t size_before = registry.size();
  ProgramHandle handle;
  handle.name = "bfs";  // same name: replaces, does not grow
  handle.description = "replacement";
  handle.run = [](const graph::EdgeList&, const ProgramSpec&,
                  const EngineOptions&) { return ProgramRunResult{}; };
  registry.add(handle);
  EXPECT_EQ(registry.size(), size_before);
  EXPECT_EQ(registry.at("bfs").description, "replacement");

  // Restore the real program for the rest of the suite.
  algo::register_builtin_programs();
  EXPECT_NE(registry.at("bfs").description, "replacement");
}

TEST(ProgramRegistry, BfsHandleMatchesDirectEngineRun) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, /*seed=*/3);

  ProgramSpec spec;
  spec.source = 5;
  const ProgramRunResult via_registry =
      ProgramRegistry::global().at("bfs").run(edges, spec, small_options());
  const algo::BfsResult direct = algo::run_bfs(edges, 5, small_options());

  ASSERT_EQ(via_registry.values.size(), direct.depth.size());
  for (std::size_t v = 0; v < direct.depth.size(); ++v)
    EXPECT_EQ(via_registry.values[v], static_cast<double>(direct.depth[v]));
  EXPECT_EQ(via_registry.report.iterations, direct.report.iterations);
  EXPECT_EQ(via_registry.report.total_seconds, direct.report.total_seconds);
  // The hash is over the raw typed bytes — recomputable by callers.
  EXPECT_EQ(via_registry.value_hash,
            fnv1a_bytes(direct.depth.data(),
                        direct.depth.size() * sizeof(direct.depth[0])));
}

TEST(ProgramRegistry, SpecMaxIterationsOverridesProgramDefault) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(8, 2000, /*seed=*/9);
  ProgramSpec spec;
  spec.max_iterations = 3;
  const ProgramRunResult result =
      ProgramRegistry::global().at("pagerank").run(edges, spec,
                                                   small_options());
  EXPECT_EQ(result.report.iterations, 3u);
  EXPECT_FALSE(result.report.converged);
}

TEST(ProgramRegistry, ValueHashIsDeterministicAcrossThreadCounts) {
  algo::register_builtin_programs();
  auto edges = graph::rmat(9, 4000, /*seed=*/21);
  edges.randomize_weights(1.0f, 10.0f, /*seed=*/5);
  ProgramSpec spec;
  spec.source = 0;
  EngineOptions serial = small_options();
  serial.threads = 1;
  EngineOptions parallel = small_options();
  parallel.threads = 4;

  const auto a =
      ProgramRegistry::global().at("sssp").run(edges, spec, serial);
  const auto b =
      ProgramRegistry::global().at("sssp").run(edges, spec, parallel);
  EXPECT_EQ(a.value_hash, b.value_hash);
  EXPECT_EQ(a.report.total_seconds, b.report.total_seconds);
}

TEST(Fnv1aBytes, MatchesReferenceConstants) {
  // FNV-1a 64-bit test vectors: empty input is the offset basis, "a" is
  // the published single-byte result.
  EXPECT_EQ(fnv1a_bytes(nullptr, 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a_bytes("a", 1), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace gr::core

#include <gtest/gtest.h>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace gr::algo {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

TEST(Reachability, SingleSourceMatchesBfsReachability) {
  const EdgeList g = graph::rmat(9, 2500, 3);
  const VertexId sources[] = {4};
  const auto result = run_reachability(g, sources);
  const auto depth = ref::bfs_depths(g, 4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool reached = depth[v] != ~0u;
    EXPECT_EQ((result.reachable[v] & 1ull) != 0, reached) << v;
  }
}

TEST(Reachability, EachBitTracksItsOwnSource) {
  // Two disjoint cycles: bit 0 seeds the first, bit 1 the second.
  const EdgeList g = graph::two_cycles(8);
  const VertexId sources[] = {0, 8};
  const auto result = run_reachability(g, sources);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(result.reachable[v], 0b01u);
  for (VertexId v = 8; v < 16; ++v) EXPECT_EQ(result.reachable[v], 0b10u);
}

TEST(Reachability, SixtyFourSourcesOnOneGraph) {
  const EdgeList g = graph::erdos_renyi(400, 2400, 7);
  std::vector<VertexId> sources;
  for (VertexId k = 0; k < 64; ++k)
    sources.push_back(static_cast<VertexId>(k * 6 + 1));
  const auto result = run_reachability(g, sources);
  // Spot-check eight bits against independent BFS runs.
  for (std::size_t k = 0; k < 64; k += 8) {
    const auto depth = ref::bfs_depths(g, sources[k]);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const bool reached = depth[v] != ~0u;
      ASSERT_EQ((result.reachable[v] >> k) & 1ull, reached ? 1u : 0u)
          << "source " << k << " vertex " << v;
    }
  }
}

TEST(Reachability, SourceReachesItself) {
  const EdgeList g = graph::path_graph(5);
  const VertexId sources[] = {3};
  const auto result = run_reachability(g, sources);
  EXPECT_EQ(result.reachable[3], 1u);
  EXPECT_EQ(result.reachable[0], 0u);  // path is directed forward
  EXPECT_EQ(result.reachable[4], 1u);
}

TEST(Reachability, RejectsBadSourceCounts) {
  const EdgeList g = graph::path_graph(5);
  EXPECT_THROW(run_reachability(g, {}), util::CheckError);
  std::vector<VertexId> too_many(65, 0);
  EXPECT_THROW(run_reachability(g, too_many), util::CheckError);
  const VertexId out_of_range[] = {99};
  EXPECT_THROW(run_reachability(g, out_of_range), util::CheckError);
}

TEST(Reachability, WorksStreamingToo) {
  const EdgeList g = graph::rmat(10, 9000, 5);
  core::EngineOptions options;
  options.device.global_memory_bytes = 128 * 1024;
  const VertexId sources[] = {1, 2, 3};
  const auto streamed = run_reachability(g, sources, options);
  const auto resident = run_reachability(g, sources);
  EXPECT_FALSE(streamed.report.resident_mode);
  EXPECT_EQ(streamed.reachable, resident.reachable);
}

}  // namespace
}  // namespace gr::algo

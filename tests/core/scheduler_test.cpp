// JobScheduler (core/engine/scheduler.hpp): admission, interleaving,
// fusion, and the headline degeneracy claim — a lone submit()+wait()
// must be bit-exact with the classic single-run engine, down to the
// trace file bytes and the metrics file modulo `engine.sched.*`.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/algorithms/registry.hpp"
#include "core/engine/scheduler.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Drops lines mentioning the scheduler's injected instruments; the
/// metrics JSON emits one instrument per line, so this is exactly the
/// "modulo engine.sched.*" comparison the design promises.
std::string without_sched_lines(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("engine.sched.") == std::string::npos) out << line << '\n';
  return out.str();
}

EngineOptions sharded_options() {
  EngineOptions options;
  options.device.global_memory_bytes = 192 * 1024;  // forces streaming
  return options;
}

TEST(JobScheduler, SingleJobBitExactWithClassicRun) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 3);
  const std::string dir = ::testing::TempDir();
  const ProgramHandle& bfs = ProgramRegistry::global().at("bfs");
  ProgramSpec spec;
  spec.source = 7;

  EngineOptions solo_options = sharded_options();
  solo_options.trace_out = dir + "sched_solo_classic.trace.json";
  solo_options.metrics_out = dir + "sched_solo_classic.metrics.json";
  const ProgramRunResult classic = bfs.run(edges, spec, solo_options);

  JobScheduler sched(edges, sharded_options());
  JobRequest request;
  request.program = "bfs";
  request.spec = spec;
  request.trace_out = dir + "sched_solo_sched.trace.json";
  request.metrics_out = dir + "sched_solo_sched.metrics.json";
  const JobId id = sched.submit(request);
  const JobResult& served = sched.wait(id);

  EXPECT_EQ(served.run.value_hash, classic.value_hash);
  EXPECT_EQ(served.run.values, classic.values);
  EXPECT_EQ(served.run.report.iterations, classic.report.iterations);
  EXPECT_EQ(served.run.report.total_seconds, classic.report.total_seconds);
  EXPECT_EQ(served.run.report.bytes_h2d, classic.report.bytes_h2d);
  EXPECT_EQ(served.run.report.kernels_launched,
            classic.report.kernels_launched);
  EXPECT_EQ(served.run.report.cache_hits, classic.report.cache_hits);
  EXPECT_EQ(served.fused_width, 1u);
  EXPECT_EQ(served.queue_seconds(), 0.0);

  // Trace bytes identical; metrics identical once the scheduler's own
  // instruments are filtered out (and only those lines may differ).
  EXPECT_EQ(slurp(request.trace_out), slurp(solo_options.trace_out));
  const std::string sched_metrics = slurp(request.metrics_out);
  EXPECT_NE(sched_metrics.find("engine.sched.width"), std::string::npos);
  EXPECT_EQ(without_sched_lines(sched_metrics),
            without_sched_lines(slurp(solo_options.metrics_out)));
}

TEST(JobScheduler, ConcurrentJobsInterleaveAndMatchSoloResults) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  const ProgramHandle& bfs = ProgramRegistry::global().at("bfs");

  EngineOptions options = sharded_options();
  options.sched_max_concurrent = 2;
  options.sched_fusion = false;
  JobScheduler sched(edges, options);
  std::vector<JobId> ids;
  for (graph::VertexId source : {2u, 11u, 23u}) {
    JobRequest request;
    request.program = "bfs";
    request.spec.source = source;
    ids.push_back(sched.submit(request));
  }
  sched.drain();
  EXPECT_TRUE(sched.idle());

  // Value hashes are options-independent, so the memory-sliced tenant
  // runs must agree with full-device solo runs.
  std::size_t i = 0;
  for (graph::VertexId source : {2u, 11u, 23u}) {
    ProgramSpec spec;
    spec.source = source;
    const ProgramRunResult solo = bfs.run(edges, spec, EngineOptions{});
    EXPECT_EQ(sched.result(ids[i]).run.value_hash, solo.value_hash)
        << "source " << source;
    ++i;
  }
  EXPECT_EQ(sched.stats().submitted, 3u);
  EXPECT_EQ(sched.stats().admitted, 3u);
  EXPECT_EQ(sched.stats().finished, 3u);
  EXPECT_EQ(sched.stats().fused_jobs, 0u);
  EXPECT_EQ(sched.stats().max_concurrent_seen, 2u);
  EXPECT_GT(sched.stats().steps, 0u);
  // Simulated time is strictly ordered per job on the shared clock.
  for (JobId id : ids) {
    const JobResult& result = sched.result(id);
    EXPECT_GE(result.admit_seconds, result.submit_seconds);
    EXPECT_GT(result.finish_seconds, result.admit_seconds);
    EXPECT_GT(result.latency_seconds(), 0.0);
  }
}

TEST(JobScheduler, BatchFusesUncappedQueries) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  const ProgramHandle& bfs = ProgramRegistry::global().at("bfs");

  JobScheduler sched(edges, sharded_options());
  std::vector<JobRequest> batch(4);
  const graph::VertexId sources[] = {1, 6, 12, 18};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].program = "bfs";
    batch[i].spec.source = sources[i];
  }
  const std::vector<JobId> ids = sched.submit_batch(batch);
  ASSERT_EQ(ids.size(), 4u);
  sched.drain();

  EXPECT_EQ(sched.stats().fused_jobs, 1u);
  EXPECT_EQ(sched.stats().fused_lanes, 4u);
  EXPECT_EQ(sched.stats().admitted, 1u);  // one fused engine run
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult& result = sched.result(ids[i]);
    EXPECT_EQ(result.fused_width, 4u);
    EXPECT_EQ(result.lane, i);
    ProgramSpec spec;
    spec.source = sources[i];
    EXPECT_EQ(result.run.value_hash,
              bfs.run(edges, spec, EngineOptions{}).value_hash)
        << "lane " << i;
  }
}

TEST(JobScheduler, CappedQueriesAreNeverFused) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  const ProgramHandle& bfs = ProgramRegistry::global().at("bfs");

  JobScheduler sched(edges, sharded_options());
  std::vector<JobRequest> batch(3);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].program = "bfs";
    batch[i].spec.source = static_cast<graph::VertexId>(3 * i);
    batch[i].spec.max_iterations = 2;  // capped: fusing could diverge
  }
  const std::vector<JobId> ids = sched.submit_batch(batch);
  sched.drain();

  EXPECT_EQ(sched.stats().fused_jobs, 0u);
  EXPECT_EQ(sched.stats().admitted, 3u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ProgramSpec spec;
    spec.source = static_cast<graph::VertexId>(3 * i);
    spec.max_iterations = 2;
    EXPECT_EQ(sched.result(ids[i]).run.value_hash,
              bfs.run(edges, spec, EngineOptions{}).value_hash);
  }
}

TEST(JobScheduler, MixedProgramBatchRejected) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(8, 1500, 2);
  JobScheduler sched(edges, EngineOptions{});
  std::vector<JobRequest> batch(2);
  batch[0].program = "bfs";
  batch[1].program = "cc";
  EXPECT_THROW(sched.submit_batch(std::move(batch)), util::CheckError);
}

TEST(JobScheduler, StreamOnlyAdmissionDisablesCacheLanes) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  EngineOptions options = sharded_options();
  options.sched_admission = "stream-only";
  options.device_cache = 1.0;  // would otherwise grant cache lanes
  JobScheduler sched(edges, options);
  JobRequest request;
  request.program = "bfs";
  request.spec.source = 4;
  const JobResult& result = sched.wait(sched.submit(request));
  EXPECT_EQ(result.run.report.cache_slots, 0u);
  EXPECT_EQ(result.run.report.cache_hits, 0u);
}

TEST(JobScheduler, CacheFairAdmissionCapsCacheLanesAtSlotCount) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  EngineOptions options = sharded_options();
  options.sched_admission = "cache-fair";
  options.device_cache = 1.0;
  JobScheduler sched(edges, options);
  JobRequest request;
  request.program = "bfs";
  request.spec.source = 4;
  const JobResult& result = sched.wait(sched.submit(request));
  // slots == 0 defaults the streaming ring to 2, so the fair cap is 2.
  EXPECT_LE(result.run.report.cache_slots, 2u);
}

TEST(JobScheduler, RejectsProgramWithoutJobFactory) {
  algo::register_builtin_programs();
  ProgramHandle handle;
  handle.name = "handrolled";
  handle.description = "registered without make_job";
  handle.run = [](const graph::EdgeList&, const ProgramSpec&,
                  const EngineOptions&) { return ProgramRunResult{}; };
  ProgramRegistry::global().add(handle);
  const auto edges = graph::path_graph(32);
  JobScheduler sched(edges, EngineOptions{});
  JobRequest request;
  request.program = "handrolled";
  EXPECT_THROW(sched.submit(request), util::CheckError);
}

TEST(JobScheduler, PerJobTrackPrefixLandsInTrace) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(8, 1500, 2);
  const std::string trace = ::testing::TempDir() + "sched_prefixed.json";
  JobScheduler sched(edges, EngineOptions{});
  JobRequest request;
  request.program = "bfs";
  request.spec.source = 1;
  request.trace_out = trace;
  request.track_prefix = "job0/";
  sched.wait(sched.submit(request));
  const std::string json = slurp(trace);
  EXPECT_NE(json.find("job0/"), std::string::npos);
}

TEST(JobScheduler, PeriodicSnapshotsWrittenDuringRun) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 3);
  const std::string metrics =
      ::testing::TempDir() + "sched_snap.metrics.json";
  EngineOptions options = sharded_options();
  options.metrics_snapshot_interval = 1e-6;  // due many times per run
  options.metrics_out = metrics;  // template-level, satisfies validate();
                                  // the per-job path comes from the request
  JobScheduler sched(edges, options);
  JobRequest request;
  request.program = "bfs";
  request.spec.source = 7;
  request.metrics_out = metrics;
  sched.wait(sched.submit(request));
  // Final file plus at least the first numbered snapshot, stamped with
  // its index and simulated due time.
  EXPECT_TRUE(std::ifstream(metrics).good());
  const std::string snap0 =
      ::testing::TempDir() + "sched_snap.metrics.0.json";
  ASSERT_TRUE(std::ifstream(snap0).good());
  const std::string json = slurp(snap0);
  EXPECT_NE(json.find("\"snapshot\": \"0\""), std::string::npos);
  EXPECT_NE(json.find("snapshot_sim_seconds"), std::string::npos);
}

TEST(JobScheduler, SurvivorRewidensWhenLoadDrains) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  EngineOptions options = sharded_options();
  options.sched_max_concurrent = 2;
  options.sched_fusion = false;
  JobScheduler sched(edges, options);
  // The capped query drains after two iterations; the survivor was
  // admitted against a half-device slice and must re-plan against the
  // whole device at the next barrier.
  JobRequest quick;
  quick.program = "bfs";
  quick.spec.source = 2;
  quick.spec.max_iterations = 2;
  JobRequest survivor;
  survivor.program = "bfs";
  survivor.spec.source = 11;
  sched.submit(quick);
  const JobId long_id = sched.submit(survivor);
  sched.drain();
  EXPECT_GE(sched.stats().rewidens, 1u);
  // Growth-only re-planning cannot change results.
  ProgramSpec spec;
  spec.source = 11;
  const ProgramHandle& bfs = ProgramRegistry::global().at("bfs");
  EXPECT_EQ(sched.result(long_id).run.value_hash,
            bfs.run(edges, spec, EngineOptions{}).value_hash);
}

TEST(JobScheduler, RewidenScheduleIsThreadCountInvariant) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  const std::string dir = ::testing::TempDir();
  // Staggered finish order at different host thread counts must leave a
  // byte-identical telemetry stream: every re-widening decision runs on
  // the driver thread against the simulated clock.
  const auto run_once = [&](std::uint32_t threads,
                            const std::string& tag) {
    EngineOptions options = sharded_options();
    options.sched_max_concurrent = 2;
    options.sched_fusion = false;
    options.threads = threads;
    options.telemetry_out = dir + "sched_rewiden_" + tag + ".ndjson";
    JobScheduler sched(edges, options);
    for (std::uint32_t i = 0; i < 3; ++i) {
      JobRequest request;
      request.program = "bfs";
      request.spec.source = 2 + 9 * i;
      if (i == 0) request.spec.max_iterations = 2;  // staggers finishes
      sched.submit(request);
    }
    sched.drain();
    EXPECT_GE(sched.stats().rewidens, 1u);
    return slurp(options.telemetry_out);
  };
  const std::string serial = run_once(1, "t1");
  const std::string pooled = run_once(4, "t4");
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("rewiden"), std::string::npos);
}

TEST(JobScheduler, SameGraphTenantsShareCachedShards) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  struct Outcome {
    std::uint64_t device_h2d = 0;
    std::uint64_t shared_hits = 0;
    std::uint64_t registry_hits = 0;
    std::vector<std::uint64_t> hashes;
  };
  const auto run_pair = [&](bool shared) {
    EngineOptions options = sharded_options();
    // Large enough that each half-device tenant still buys cache lanes
    // out of its slice's leftover (192KB slices leave none), small
    // enough that the graph still shards and streams.
    options.device.global_memory_bytes = 512 * 1024;
    options.sched_max_concurrent = 2;
    options.sched_fusion = false;
    options.sched_shared_cache = shared;
    JobScheduler sched(edges, options);
    std::vector<JobId> ids;
    for (graph::VertexId source : {2u, 11u}) {
      JobRequest request;
      request.program = "bfs";
      request.spec.source = source;
      ids.push_back(sched.submit(request));
    }
    sched.drain();
    Outcome out;
    out.device_h2d = sched.device_totals().bytes_h2d;
    out.registry_hits = sched.shared_cache_stats().hits;
    for (JobId id : ids) {
      out.shared_hits += sched.result(id).run.report.cache_shared_hits;
      out.hashes.push_back(sched.result(id).run.value_hash);
    }
    return out;
  };
  const Outcome private_cache = run_pair(false);
  const Outcome shared_cache = run_pair(true);
  // Same-graph tenants hit each other's uploads: shards are served
  // device-to-device, so the link moves strictly fewer bytes...
  EXPECT_GT(shared_cache.shared_hits, 0u);
  EXPECT_GT(shared_cache.registry_hits, 0u);
  EXPECT_LT(shared_cache.device_h2d, private_cache.device_h2d);
  // ...and the registry stays out of the private-cache run entirely.
  EXPECT_EQ(private_cache.shared_hits, 0u);
  EXPECT_EQ(private_cache.registry_hits, 0u);
  // Topology served from a peer's lane is byte-identical to an upload,
  // so results cannot move.
  EXPECT_EQ(shared_cache.hashes, private_cache.hashes);
}

}  // namespace
}  // namespace gr::core

#include "core/engine/shard_cache.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/common.hpp"

namespace gr::core {
namespace {

constexpr ResidencyGroups kTopology = kGroupInTopology | kGroupOutTopology;
constexpr ResidencyGroups kAll = kTopology | kGroupEdgeState;

ResidencyPlan make_plan(std::uint32_t partitions, std::uint32_t streaming,
                        std::uint32_t cache, ResidencyGroups cacheable,
                        bool fully_resident = false) {
  ResidencyPlan plan;
  plan.partitions = partitions;
  plan.streaming_slots = streaming;
  plan.cache_slots = cache;
  plan.fully_resident = fully_resident;
  plan.cacheable = cacheable;
  return plan;
}

/// Visits a shard and immediately completes it, as the engine does for
/// a visit whose uploads were issued.
ShardVisit visit(ShardCache& cache, std::uint32_t shard,
                 ResidencyGroups requested = kAll) {
  ShardVisit v = cache.begin_visit(shard, requested);
  cache.complete_visit(v);
  return v;
}

TEST(ShardCache, StreamingOnlyPlanUsesModuloRing) {
  ShardCache cache;
  cache.configure(make_plan(6, 2, 0, kTopology));
  for (std::uint32_t shard = 0; shard < 6; ++shard) {
    const ShardVisit v = visit(cache, shard);
    EXPECT_FALSE(v.cached);
    EXPECT_EQ(v.lane, shard % 2u);
    EXPECT_EQ(v.load, kAll);
    EXPECT_EQ(v.hit, 0u);
    EXPECT_FALSE(v.evicted());
  }
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(cache.stats().group_hits, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

TEST(ShardCache, AdmissionFillsFreeLanesLowestIndexFirst) {
  ShardCache cache;
  cache.configure(make_plan(6, 2, 3, kTopology));
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    const ShardVisit v = visit(cache, shard);
    EXPECT_TRUE(v.cached);
    EXPECT_EQ(v.lane, 2u + shard);  // cache lanes sit after the ring
    EXPECT_FALSE(v.evicted());
  }
  EXPECT_EQ(cache.occupancy(), 3u);
}

TEST(ShardCache, NoAdmissionWithoutCacheableGroups) {
  // A pass requesting only non-cacheable groups gains nothing from a
  // cache lane; the visit must stream through the ring instead.
  ShardCache cache;
  cache.configure(make_plan(6, 2, 3, kTopology));
  const ShardVisit v = visit(cache, 4, kGroupEdgeState);
  EXPECT_FALSE(v.cached);
  EXPECT_EQ(v.lane, 4u % 2u);
  EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(ShardCache, RepeatVisitHitsCacheableGroupsOnly) {
  ShardCache cache;
  cache.configure(make_plan(6, 2, 3, kTopology));  // edge state volatile
  const ShardVisit first = visit(cache, 1, kAll);
  EXPECT_EQ(first.load, kAll);
  EXPECT_EQ(first.hit, 0u);

  const ShardVisit second = visit(cache, 1, kAll);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.hit, kTopology);           // persisted between visits
  EXPECT_EQ(second.load, kGroupEdgeState);    // must re-stream
  EXPECT_EQ(cache.stats().group_hits, 2u);
  EXPECT_EQ(cache.stats().group_misses, 4u);
  EXPECT_EQ(cache.stats().shard_hits, 0u);  // never fully served in place

  cache.invalidate_all(kGroupEdgeState);  // no-op: group was never valid
  const ShardVisit third = visit(cache, 1, kTopology);
  EXPECT_EQ(third.load, 0u);
  EXPECT_EQ(third.hit, kTopology);
  EXPECT_EQ(cache.stats().shard_hits, 1u);
}

TEST(ShardCache, EvictionOrderIsDeterministicLru) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 2, kTopology));
  visit(cache, 0);  // tick 1 -> lane 2
  visit(cache, 1);  // tick 2 -> lane 3

  // Shard 0 is least recently used: it must be the first victim, and
  // the replacement inherits its lane.
  ShardVisit v = visit(cache, 2);
  EXPECT_TRUE(v.cached);
  EXPECT_EQ(v.evicted_shard, 0u);
  EXPECT_EQ(v.lane, 2u);
  EXPECT_FALSE(cache.is_cached(0));

  // Now shard 1 (tick 2) is older than shard 2 (tick 3).
  v = visit(cache, 3);
  EXPECT_EQ(v.evicted_shard, 1u);
  EXPECT_EQ(v.lane, 3u);

  // Touching shard 2 refreshes it, so shard 3 becomes the next victim.
  visit(cache, 2);
  v = visit(cache, 4);
  EXPECT_EQ(v.evicted_shard, 3u);
  EXPECT_EQ(cache.stats().evictions, 3u);

  // Replaying the same sequence on a fresh cache makes identical
  // decisions (the engine's determinism contract).
  ShardCache replay;
  replay.configure(make_plan(8, 2, 2, kTopology));
  const std::array<std::uint32_t, 6> order = {0, 1, 2, 3, 2, 4};
  std::vector<std::uint32_t> victims;
  for (std::uint32_t shard : order) {
    const ShardVisit r = visit(replay, shard);
    if (r.evicted()) victims.push_back(r.evicted_shard);
  }
  EXPECT_EQ(victims, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(ShardCache, FrontierActiveOccupantsAreNotEvicted) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 2, kTopology));
  visit(cache, 0);  // LRU-oldest...
  visit(cache, 1);

  const std::array<std::uint32_t, 1> active = {0};
  cache.begin_iteration(active);  // ...but frontier-active: protected
  const ShardVisit v = visit(cache, 2);
  EXPECT_TRUE(v.cached);
  EXPECT_EQ(v.evicted_shard, 1u);
  EXPECT_TRUE(cache.is_cached(0));
}

TEST(ShardCache, ThrashGuardStreamsWhenEveryOccupantIsActive) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 2, kTopology));
  visit(cache, 0);
  visit(cache, 1);

  const std::array<std::uint32_t, 2> active = {0, 1};
  cache.begin_iteration(active);
  const ShardVisit v = visit(cache, 5);
  EXPECT_FALSE(v.cached);
  EXPECT_EQ(v.lane, 5u % 2u);  // classic ring, full reload
  EXPECT_EQ(v.load, kAll);
  EXPECT_FALSE(v.evicted());
  EXPECT_TRUE(cache.is_cached(0));
  EXPECT_TRUE(cache.is_cached(1));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ShardCache, DirtyWritebackOnlyWhenMutated) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 1, kAll));
  visit(cache, 0, kAll);
  cache.mark_dirty(0, kGroupEdgeState);
  EXPECT_EQ(cache.dirty_groups(0), kGroupEdgeState);

  // Evicting the mutated shard requests a writeback of exactly the
  // dirty groups — clean topology is simply dropped.
  ShardVisit v = visit(cache, 1, kAll);
  EXPECT_EQ(v.evicted_shard, 0u);
  EXPECT_EQ(v.writeback, kGroupEdgeState);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);

  // Shard 1 was never mutated: its eviction writes nothing back.
  v = visit(cache, 2, kAll);
  EXPECT_EQ(v.evicted_shard, 1u);
  EXPECT_EQ(v.writeback, 0u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(ShardCache, MarkDirtyIgnoresInvalidGroupsAndUncachedShards) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 1, kAll));
  cache.mark_dirty(3, kAll);  // not cached: no-op
  EXPECT_EQ(cache.dirty_groups(3), 0u);

  visit(cache, 0, kTopology);  // edge state never loaded -> not valid
  cache.mark_dirty(0, kGroupEdgeState);
  EXPECT_EQ(cache.dirty_groups(0), 0u);
  cache.mark_dirty(0, kGroupInTopology);
  EXPECT_EQ(cache.dirty_groups(0), kGroupInTopology);
}

TEST(ShardCache, InvalidateAllDropsValidityAndDirtiness) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 2, kAll));
  visit(cache, 0, kAll);
  cache.mark_dirty(0, kGroupEdgeState);

  // Host master of the edge state changed (scatter round trip): cached
  // copies become invalid and their dirty bits must not survive either
  // (writing back a stale copy would clobber the new master).
  cache.invalidate_all(kGroupEdgeState);
  EXPECT_EQ(cache.valid_groups(0), kTopology);
  EXPECT_EQ(cache.dirty_groups(0), 0u);

  const ShardVisit v = visit(cache, 0, kAll);
  EXPECT_EQ(v.hit, kTopology);
  EXPECT_EQ(v.load, kGroupEdgeState);
}

TEST(ShardCache, FullyResidentPlanPinsEveryShardToItsLane) {
  ShardCache cache;
  ResidencyPlan plan = make_plan(4, 0, 4, kAll, /*fully_resident=*/true);
  cache.configure(plan);
  EXPECT_EQ(cache.occupancy(), 4u);

  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    const ShardVisit v = visit(cache, shard, kAll);
    EXPECT_TRUE(v.cached);
    EXPECT_EQ(v.lane, shard);  // lane p belongs to shard p, permanently
    EXPECT_EQ(v.load, kAll);   // first visit still uploads everything
    EXPECT_FALSE(v.evicted());
  }
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    const ShardVisit v = visit(cache, shard, kAll);
    EXPECT_EQ(v.hit, kAll);
    EXPECT_EQ(v.load, 0u);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().shard_hits, 4u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(ShardCache, ResetDropsEntriesAndStats) {
  ShardCache cache;
  cache.configure(make_plan(8, 2, 2, kAll));
  visit(cache, 0);
  visit(cache, 1);
  cache.reset();
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(cache.stats().shard_visits, 0u);
  EXPECT_FALSE(cache.is_cached(0));
}

TEST(ShardCache, RejectsInconsistentFullyResidentPlan) {
  ShardCache cache;
  EXPECT_THROW(
      cache.configure(make_plan(4, 0, 2, kAll, /*fully_resident=*/true)),
      util::CheckError);
}

}  // namespace
}  // namespace gr::core

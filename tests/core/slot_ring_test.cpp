#include "core/engine/slot_ring.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "vgpu/device.hpp"

namespace gr::core {
namespace {

vgpu::DeviceConfig tiny_config() {
  vgpu::DeviceConfig config = vgpu::DeviceConfig::bench_default();
  return config;
}

TEST(SlotRing, LaneRotationIsModuloK) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, /*async=*/true);
  ring.add_lane(dev, /*async=*/true);
  ASSERT_EQ(ring.size(), 2u);
  // Double buffering: shard p streams through lane p % K.
  EXPECT_EQ(&ring.lane_for_shard(0), &ring.lane(0));
  EXPECT_EQ(&ring.lane_for_shard(1), &ring.lane(1));
  EXPECT_EQ(&ring.lane_for_shard(2), &ring.lane(0));
  EXPECT_EQ(&ring.lane_for_shard(5), &ring.lane(1));
}

TEST(SlotRing, AsyncLanesGetPrivateStreams) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, /*async=*/true);
  ring.add_lane(dev, /*async=*/true);
  EXPECT_NE(ring.lane(0).stream, ring.lane(1).stream);
  EXPECT_NE(ring.lane(0).stream, &dev.default_stream());
}

TEST(SlotRing, SyncLanesShareTheDefaultStream) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, /*async=*/false);
  ring.add_lane(dev, /*async=*/false);
  EXPECT_EQ(ring.lane(0).stream, &dev.default_stream());
  EXPECT_EQ(ring.lane(1).stream, &dev.default_stream());
}

TEST(SlotRing, SprayPoolBoundedByHyperQWidth) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, true);
  ring.create_spray_streams(dev, /*async=*/true,
                            /*max_concurrent_kernels=*/32);
  EXPECT_EQ(ring.spray_stream_count(), 8u);  // min(8, 32/2)

  SlotRing narrow;
  narrow.add_lane(dev, true);
  narrow.create_spray_streams(dev, true, /*max_concurrent_kernels=*/6);
  EXPECT_EQ(narrow.spray_stream_count(), 3u);  // min(8, 6/2)
}

TEST(SlotRing, NoSprayStreamsWhenSynchronous) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, false);
  ring.create_spray_streams(dev, /*async=*/false, 32);
  EXPECT_EQ(ring.spray_stream_count(), 0u);
}

TEST(SlotRing, SprayedCopiesRoundRobinTheStreamPool) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  SlotLane& lane = ring.add_lane(dev, true);
  ring.create_spray_streams(dev, true, 32);
  ASSERT_EQ(ring.spray_stream_count(), 8u);

  auto src = std::vector<char>(256);
  auto dst = dev.alloc<char>(256);
  EXPECT_EQ(ring.spray_cursor(), 0u);
  for (int i = 1; i <= 10; ++i) {
    ring.copy_to_lane(dev, lane, dst.data(), src.data(), src.size(),
                      /*spray=*/true, /*spill_seconds=*/0.0);
    EXPECT_EQ(ring.spray_cursor(), static_cast<std::size_t>(i));
  }
  dev.synchronize();
}

TEST(SlotRing, UnsprayedCopiesStayOnTheLaneStream) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  SlotLane& lane = ring.add_lane(dev, true);
  ring.create_spray_streams(dev, true, 32);

  auto src = std::vector<char>(64);
  auto dst = dev.alloc<char>(64);
  ring.copy_to_lane(dev, lane, dst.data(), src.data(), src.size(),
                    /*spray=*/false, 0.0);
  EXPECT_EQ(ring.spray_cursor(), 0u);  // pool untouched
  dev.synchronize();
}

TEST(SlotRing, FinishShardRecordsFreeEventInAsyncMode) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  SlotLane& lane = ring.add_lane(dev, true);
  EXPECT_EQ(lane.free_event, nullptr);
  ring.finish_shard(dev, lane, /*async=*/true);
  EXPECT_NE(lane.free_event, nullptr);
  dev.synchronize();
}

TEST(SlotRing, ResetDropsLanesAndSprayState) {
  vgpu::Device dev(tiny_config());
  SlotRing ring;
  ring.add_lane(dev, true);
  ring.create_spray_streams(dev, true, 32);
  SlotLane& lane = ring.lane(0);
  auto src = std::vector<char>(16);
  auto dst = dev.alloc<char>(16);
  ring.copy_to_lane(dev, lane, dst.data(), src.data(), src.size(), true, 0.0);
  dev.synchronize();

  ring.reset();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.spray_stream_count(), 0u);
  EXPECT_EQ(ring.spray_cursor(), 0u);
}

TEST(SlotExtents, StridedExtentsCoverEachLanesShards) {
  const auto edges = graph::rmat(8, 2000, /*seed=*/11);
  const auto pg = PartitionedGraph::build(edges, 5);
  const std::uint32_t slot_count = 2;
  for (std::uint32_t slot = 0; slot < slot_count; ++slot) {
    const SlotExtents extents =
        compute_slot_extents(pg, slot, slot_count, pg.num_shards());
    graph::VertexId max_interval = 0;
    graph::EdgeId max_in = 0, max_out = 0;
    for (std::uint32_t p = slot; p < pg.num_shards(); p += slot_count) {
      max_interval = std::max(max_interval, pg.shard(p).interval.size());
      max_in = std::max(max_in, pg.shard(p).in_edge_count());
      max_out = std::max(max_out, pg.shard(p).out_edge_count());
    }
    EXPECT_EQ(extents.max_interval, max_interval);
    EXPECT_EQ(extents.max_in_edges, max_in);
    EXPECT_EQ(extents.max_out_edges, max_out);
  }
}

TEST(SlotExtents, ExplicitShardListForm) {
  const auto edges = graph::rmat(8, 2000, /*seed=*/11);
  const auto pg = PartitionedGraph::build(edges, 6);
  // A device owning shards {1, 3, 5} with two lanes: lane 0 hosts
  // {1, 5}, lane 1 hosts {3}.
  const std::vector<std::uint32_t> ids = {1, 3, 5};
  const SlotExtents lane0 = compute_slot_extents(pg, ids, 0, 2);
  const SlotExtents lane1 = compute_slot_extents(pg, ids, 1, 2);
  EXPECT_EQ(lane0.max_in_edges, std::max(pg.shard(1).in_edge_count(),
                                         pg.shard(5).in_edge_count()));
  EXPECT_EQ(lane1.max_in_edges, pg.shard(3).in_edge_count());
  EXPECT_EQ(lane1.max_interval, pg.shard(3).interval.size());
}

}  // namespace
}  // namespace gr::core

#include "core/engine/transfer_plan.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gr::core {
namespace {

TEST(TransferPlan, FrontierManagementSkipsIdleShards) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 4);
  FrontierManager fm(pg);
  fm.activate_single(0);
  const std::uint32_t home = pg.shard_of(0);

  const TransferPlan plan = build_transfer_plan(4, fm, true);
  ASSERT_EQ(plan.active_shards.size(), 1u);
  EXPECT_EQ(plan.active_shards[0], home);
  EXPECT_EQ(plan.skipped, 3u);
  EXPECT_EQ(plan.processed(), 1u);
}

TEST(TransferPlan, ManagementOffStreamsEveryShard) {
  const auto edges = graph::path_graph(12);
  const auto pg = PartitionedGraph::build(edges, 4);
  FrontierManager fm(pg);
  fm.activate_single(0);  // only one shard has work...

  // ...but the unoptimized baseline streams all of them, in order.
  const TransferPlan plan = build_transfer_plan(4, fm, false);
  ASSERT_EQ(plan.active_shards.size(), 4u);
  for (std::uint32_t p = 0; p < 4; ++p) EXPECT_EQ(plan.active_shards[p], p);
  EXPECT_EQ(plan.skipped, 0u);
}

TEST(TransferPlan, EmptyFrontierSkipsEverything) {
  const auto edges = graph::path_graph(8);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);  // nothing activated
  const TransferPlan plan = build_transfer_plan(2, fm, true);
  EXPECT_TRUE(plan.active_shards.empty());
  EXPECT_EQ(plan.skipped, 2u);
}

TEST(TransferPlan, ActiveShardsStayOrdered) {
  const auto edges = graph::path_graph(20);
  const auto pg = PartitionedGraph::build(edges, 5);
  FrontierManager fm(pg);
  fm.activate_all();
  const TransferPlan plan = build_transfer_plan(5, fm, true);
  ASSERT_EQ(plan.active_shards.size(), 5u);
  for (std::uint32_t p = 0; p < 5; ++p) EXPECT_EQ(plan.active_shards[p], p);
}

TEST(ShardWork, ManagementOnUsesFrontierAggregates) {
  const auto edges = graph::star_graph(16);  // hub 0: in 15, out 15
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);
  const std::uint32_t home = pg.shard_of(0);

  const ShardWork work = plan_shard_work(pg, fm, true, home);
  EXPECT_EQ(work.active_vertices, 1u);
  EXPECT_EQ(work.active_in_edges, 15u);
  EXPECT_EQ(work.active_out_edges, 15u);
}

TEST(ShardWork, ManagementOffUsesFullShardExtent) {
  const auto edges = graph::star_graph(16);
  const auto pg = PartitionedGraph::build(edges, 2);
  FrontierManager fm(pg);
  fm.activate_single(0);  // frontier is ignored with management off

  for (std::uint32_t p = 0; p < pg.num_shards(); ++p) {
    const ShardWork work = plan_shard_work(pg, fm, false, p);
    const ShardTopology& shard = pg.shard(p);
    EXPECT_EQ(work.active_vertices, shard.interval.size());
    EXPECT_EQ(work.active_in_edges, shard.in_edge_count());
    EXPECT_EQ(work.active_out_edges, shard.out_edge_count());
  }
}

}  // namespace
}  // namespace gr::core

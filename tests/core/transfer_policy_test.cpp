// Contract of the hybrid transfer layer (DESIGN.md §3c): the analytic
// link-cost models behave (pinned cost is monotone in touched edges, so
// a denser frontier never flips a shard from explicit back to
// zero-copy), every forced policy degenerates cleanly, `explicit` is
// bit-exact with the pre-hybrid engine, `auto` never streams more H2D
// bytes than `explicit`, and the per-strategy counters account for
// every scheduled shard.
#include "core/engine/transfer_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithms/algorithms.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "vgpu/config.hpp"

namespace gr::core {
namespace {

TEST(TransferPolicyParse, AcceptsAllNamesAndRejectsJunk) {
  EXPECT_EQ(parse_transfer_policy("auto"), TransferPolicy::kAuto);
  EXPECT_EQ(parse_transfer_policy("explicit"), TransferPolicy::kExplicit);
  EXPECT_EQ(parse_transfer_policy("pinned"), TransferPolicy::kPinned);
  EXPECT_EQ(parse_transfer_policy("managed"), TransferPolicy::kManaged);
  EXPECT_THROW(parse_transfer_policy("zero-copy"), util::CheckError);
  EXPECT_THROW(parse_transfer_policy(""), util::CheckError);
  for (TransferPolicy p :
       {TransferPolicy::kAuto, TransferPolicy::kExplicit,
        TransferPolicy::kPinned, TransferPolicy::kManaged})
    EXPECT_EQ(parse_transfer_policy(transfer_policy_name(p)), p);
}

TEST(TransferPolicyParse, EngineOptionsValidateEnforcesMembership) {
  EngineOptions options;
  options.transfer_policy = "sometimes";
  EXPECT_THROW(options.validate(), util::CheckError);
  options.transfer_policy = "auto";
  options.validate();
}

TEST(TransferCostModel, PinnedCostIsMonotoneInAccesses) {
  const vgpu::DeviceConfig config = vgpu::DeviceConfig::k20c();
  LinkCost prev = pinned_link_cost(config, 0);
  EXPECT_EQ(prev.link_bytes, 0u);
  EXPECT_EQ(prev.seconds, 0.0);
  for (std::uint64_t accesses = 1; accesses < (1u << 22); accesses *= 3) {
    const LinkCost cost = pinned_link_cost(config, accesses);
    EXPECT_GE(cost.seconds, prev.seconds) << accesses;
    EXPECT_GE(cost.link_bytes, prev.link_bytes) << accesses;
    prev = cost;
  }
}

TEST(TransferCostModel, ManagedCostIsMonotoneAndBoundedByFootprint) {
  const vgpu::DeviceConfig config = vgpu::DeviceConfig::k20c();
  const std::uint64_t buffer = 64u << 20;
  EXPECT_EQ(managed_link_cost(config, buffer, 0).seconds, 0.0);
  EXPECT_EQ(managed_link_cost(config, 0, 1000).link_bytes, 0u);
  LinkCost prev;
  for (std::uint64_t accesses = 1; accesses < (1u << 26); accesses *= 4) {
    const LinkCost cost = managed_link_cost(config, buffer, accesses);
    EXPECT_GE(cost.seconds, prev.seconds) << accesses;
    // Coupon-collector saturation: never more pages than the buffer has.
    EXPECT_LE(cost.link_bytes, buffer + config.managed_page_bytes);
    prev = cost;
  }
}

TEST(TransferCostModel, ExplicitSecondsScaleLinearly) {
  const vgpu::DeviceConfig config = vgpu::DeviceConfig::k20c();
  const double one = explicit_link_seconds(config, 1u << 20);
  EXPECT_GT(one, 0.0);
  EXPECT_DOUBLE_EQ(explicit_link_seconds(config, 4u << 20), 4.0 * one);
}

TEST(TransferCostModel, DecodeSecondsGrowWithElements) {
  const vgpu::DeviceConfig config = vgpu::DeviceConfig::k20c();
  const double small = varint_decode_seconds(config, 1000, 2000, 8000);
  const double large =
      varint_decode_seconds(config, 1000000, 2000000, 8000000);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

/// Denser frontier never switches a shard explicit -> pinned: sweep the
/// active counts upward on a real configured policy engine and require
/// the chosen strategy to leave the zero-copy family at most once.
TEST(TransferPolicyEngineTest, DenserFrontierNeverFlipsBackToZeroCopy) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  const PartitionedGraph graph = PartitionedGraph::build(edges, 4);
  ProgramFootprint footprint;
  footprint.vertex_bytes = 4;
  footprint.gather_bytes = 4;
  footprint.has_gather = true;
  ResidencyPlan residency;
  residency.partitions = 4;
  residency.streaming_slots = 2;
  residency.cache_slots = 0;
  residency.fully_resident = false;

  TransferPolicyEngine engine;
  engine.configure(TransferPolicy::kAuto, graph, footprint, vgpu::DeviceConfig::k20c(),
                   residency);

  const std::uint32_t shard = 0;
  const std::uint64_t in_edges = graph.shard(shard).in_edge_count();
  const std::uint32_t vertices = graph.shard(shard).interval.size();
  bool left_zero_copy = false;
  for (std::uint64_t active = 1; active <= in_edges; active *= 2) {
    ShardWork work;
    work.active_vertices = std::min<std::uint64_t>(vertices, active);
    work.active_in_edges = active;
    const TransferDecision d =
        engine.decide(shard, kGroupInTopology, work, /*is_cached=*/false,
                      /*can_admit=*/false);
    const bool zero_copy = d.strategy == TransferStrategy::kPinned ||
                           d.strategy == TransferStrategy::kManaged;
    if (!zero_copy) left_zero_copy = true;
    EXPECT_FALSE(left_zero_copy && zero_copy)
        << "shard flipped back to zero-copy at " << active
        << " active edges";
    // The decision must never claim to beat the explicit baseline while
    // charging more simulated link time than it.
    EXPECT_LE(d.est_seconds, d.est_explicit_seconds + 1e-12);
  }
  // Sanity: the sweep actually exercised both regimes.
  const ShardWork sparse{1, 1, 0};
  EXPECT_EQ(engine
                .decide(shard, kGroupInTopology, sparse, false,
                        /*can_admit=*/false)
                .strategy,
            TransferStrategy::kPinned);
}

// --- engine-level degeneration, on an out-of-memory PageRank run ---

constexpr std::uint32_t kPartitions = 12;
constexpr std::uint32_t kIterations = 10;

struct PolicyRun {
  std::vector<float> rank;
  RunReport report;
};

PolicyRun run_policy(const std::string& policy, double factor = 0.25) {
  static const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  const std::uint64_t reserved =
      graph::footprint_bytes(edges.num_vertices(), edges.num_edges());
  EngineOptions options;
  options.partitions = kPartitions;
  options.device.global_memory_bytes =
      static_cast<std::uint64_t>(static_cast<double>(reserved) * factor);
  if (!policy.empty()) options.transfer_policy = policy;
  auto result = algo::run_pagerank(edges, kIterations, options);
  EXPECT_EQ(result.report.partitions, kPartitions);
  // The interesting regime is out of memory; only the resident-mode
  // test passes a factor that fits the whole graph.
  EXPECT_EQ(result.report.resident_mode, factor >= 1.0);
  return {std::move(result.rank), std::move(result.report)};
}

TEST(TransferPolicyEquivalence, ExplicitIsBitExactWithDefault) {
  const PolicyRun legacy = run_policy("");  // default options
  const PolicyRun forced = run_policy("explicit");
  EXPECT_EQ(legacy.report.total_seconds, forced.report.total_seconds);
  EXPECT_EQ(legacy.report.bytes_h2d, forced.report.bytes_h2d);
  EXPECT_EQ(legacy.report.bytes_d2h, forced.report.bytes_d2h);
  EXPECT_EQ(legacy.report.memcpy_ops, forced.report.memcpy_ops);
  EXPECT_EQ(legacy.report.kernels_launched, forced.report.kernels_launched);
  EXPECT_EQ(legacy.rank, forced.rank);
}

TEST(TransferPolicyEquivalence, AllPoliciesComputeIdenticalResults) {
  const PolicyRun base = run_policy("explicit");
  for (const char* policy : {"auto", "pinned", "managed"}) {
    const PolicyRun run = run_policy(policy);
    ASSERT_EQ(run.rank.size(), base.rank.size()) << policy;
    for (std::size_t v = 0; v < base.rank.size(); ++v)
      ASSERT_EQ(run.rank[v], base.rank[v]) << policy << " vertex " << v;
    EXPECT_EQ(run.report.iterations, base.report.iterations) << policy;
  }
}

TEST(TransferPolicyEquivalence, AutoNeverStreamsMoreThanExplicit) {
  const PolicyRun explicit_run = run_policy("explicit");
  const PolicyRun auto_run = run_policy("auto");
  EXPECT_LE(auto_run.report.bytes_h2d, explicit_run.report.bytes_h2d);
  EXPECT_LE(auto_run.report.h2d_busy_seconds,
            explicit_run.report.h2d_busy_seconds);
}

/// The headline behaviour at unit-test scale, compression flavor: on
/// dense PageRank frontiers with large shards, auto ships the topology
/// as delta+varint blobs and strictly reduces both H2D traffic and
/// simulated link occupancy.
TEST(TransferPolicyEquivalence, AutoCompressesDenseLargeShards) {
  const graph::EdgeList edges = graph::rmat(14, 600000, 17);
  const std::uint64_t reserved =
      graph::footprint_bytes(edges.num_vertices(), edges.num_edges());
  EngineOptions options;
  options.partitions = 4;
  options.device.global_memory_bytes =
      static_cast<std::uint64_t>(static_cast<double>(reserved) * 0.25);
  options.transfer_policy = "explicit";
  const auto explicit_run = algo::run_pagerank(edges, 10, options);
  options.transfer_policy = "auto";
  const auto auto_run = algo::run_pagerank(edges, 10, options);
  EXPECT_EQ(auto_run.rank, explicit_run.rank);
  EXPECT_FALSE(auto_run.report.resident_mode);
  EXPECT_GT(auto_run.report.transfer.compressed_shards, 0u);
  EXPECT_LT(auto_run.report.bytes_h2d, explicit_run.report.bytes_h2d);
  EXPECT_LT(auto_run.report.h2d_busy_seconds,
            explicit_run.report.h2d_busy_seconds);
}

/// Zero-copy flavor: a high-diameter road-network BFS produces many
/// sparse shard visits whose touched footprint is cheaper to read in
/// place over PCIe than to bulk-transfer.
TEST(TransferPolicyEquivalence, AutoPinsSparseRoadFrontiers) {
  const graph::EdgeList edges = graph::road_network(150, 150, 7);
  const std::uint64_t reserved =
      graph::footprint_bytes(edges.num_vertices(), edges.num_edges());
  EngineOptions options;
  options.partitions = 8;
  options.device.global_memory_bytes =
      static_cast<std::uint64_t>(static_cast<double>(reserved) * 0.25);
  options.transfer_policy = "explicit";
  const auto explicit_run = algo::run_bfs(edges, 0, options);
  options.transfer_policy = "auto";
  const auto auto_run = algo::run_bfs(edges, 0, options);
  EXPECT_EQ(auto_run.depth, explicit_run.depth);
  EXPECT_FALSE(auto_run.report.resident_mode);
  EXPECT_GT(auto_run.report.transfer.pinned_shards, 0u);
  EXPECT_LT(auto_run.report.bytes_h2d, explicit_run.report.bytes_h2d);
  EXPECT_LT(auto_run.report.h2d_busy_seconds,
            explicit_run.report.h2d_busy_seconds);
}

TEST(TransferPolicyEquivalence, ForcedModesDegenerate) {
  const PolicyRun explicit_run = run_policy("explicit");
  EXPECT_GT(explicit_run.report.transfer.explicit_shards, 0u);
  EXPECT_EQ(explicit_run.report.transfer.compressed_shards, 0u);
  EXPECT_EQ(explicit_run.report.transfer.pinned_shards, 0u);
  EXPECT_EQ(explicit_run.report.transfer.managed_shards, 0u);

  const PolicyRun pinned_run = run_policy("pinned");
  EXPECT_GT(pinned_run.report.transfer.pinned_shards, 0u);
  EXPECT_EQ(pinned_run.report.transfer.explicit_shards, 0u);
  EXPECT_EQ(pinned_run.report.transfer.compressed_shards, 0u);
  EXPECT_EQ(pinned_run.report.transfer.managed_shards, 0u);

  const PolicyRun managed_run = run_policy("managed");
  EXPECT_GT(managed_run.report.transfer.managed_shards, 0u);
  EXPECT_EQ(managed_run.report.transfer.explicit_shards, 0u);
  EXPECT_EQ(managed_run.report.transfer.pinned_shards, 0u);
}

TEST(TransferPolicyEquivalence, CountersAccountForEveryScheduledShard) {
  for (const char* policy : {"explicit", "auto", "pinned", "managed"}) {
    const PolicyRun run = run_policy(policy);
    const TransferStats& t = run.report.transfer;
    EXPECT_GT(t.total_shards(), 0u) << policy;
    // Every strategy that moved shards charged link bytes, and skipped
    // visits recorded the traffic they avoided.
    EXPECT_EQ(t.explicit_shards == 0, t.explicit_bytes == 0) << policy;
    EXPECT_EQ(t.pinned_shards == 0, t.pinned_bytes == 0) << policy;
    EXPECT_EQ(t.managed_shards == 0, t.managed_bytes == 0) << policy;
  }
}

TEST(TransferPolicyEquivalence, ResidentModeIgnoresPolicy) {
  // A budget that fits everything: one upload, no per-iteration
  // streaming, so every policy is the same explicit upload sequence.
  const PolicyRun explicit_run = run_policy("explicit", 4.0);
  const PolicyRun auto_run = run_policy("auto", 4.0);
  EXPECT_EQ(explicit_run.report.total_seconds, auto_run.report.total_seconds);
  EXPECT_EQ(explicit_run.report.bytes_h2d, auto_run.report.bytes_h2d);
  EXPECT_EQ(explicit_run.rank, auto_run.rank);
}

}  // namespace
}  // namespace gr::core

#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace gr::graph {
namespace {

EdgeList diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  EdgeList g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Compressed, BySourceGroupsOutEdges) {
  const auto csr = Compressed::by_source(diamond());
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(3), 0u);
  const auto n0 = csr.neighbors(0);
  EXPECT_EQ((std::vector<VertexId>{n0.begin(), n0.end()}),
            (std::vector<VertexId>{1, 2}));
}

TEST(Compressed, ByDestinationGroupsInEdges) {
  const auto csc = Compressed::by_destination(diamond());
  EXPECT_EQ(csc.degree(3), 2u);
  const auto n3 = csc.neighbors(3);
  EXPECT_EQ((std::vector<VertexId>{n3.begin(), n3.end()}),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(csc.degree(0), 0u);
}

TEST(Compressed, OriginalIndexMapsBackToEdgeList) {
  const EdgeList g = diamond();
  const auto csc = Compressed::by_destination(g);
  for (VertexId v = 0; v < csc.num_vertices(); ++v) {
    const auto offs = csc.offsets();
    for (EdgeId slot = offs[v]; slot < offs[v + 1]; ++slot) {
      const Edge& original = g.edge(csc.original_index()[slot]);
      EXPECT_EQ(original.dst, v);
      EXPECT_EQ(original.src, csc.adjacency()[slot]);
    }
  }
}

TEST(Compressed, BuildIsStableWithinVertex) {
  // Counting sort must preserve edge-list order within one key vertex.
  EdgeList g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto csr = Compressed::by_source(g);
  const auto n0 = csr.neighbors(0);
  EXPECT_EQ((std::vector<VertexId>{n0.begin(), n0.end()}),
            (std::vector<VertexId>{2, 1, 2}));
  EXPECT_EQ(csr.original_index()[0], 0u);
  EXPECT_EQ(csr.original_index()[1], 1u);
  EXPECT_EQ(csr.original_index()[2], 2u);
}

TEST(Compressed, EmptyGraph) {
  EdgeList g(5);
  const auto csr = Compressed::by_source(g);
  EXPECT_EQ(csr.num_vertices(), 5u);
  EXPECT_EQ(csr.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(csr.degree(v), 0u);
}

TEST(Compressed, OffsetsAreMonotoneOnRandomGraph) {
  const EdgeList g = erdos_renyi(500, 5000, 42);
  const auto csr = Compressed::by_source(g);
  const auto offs = csr.offsets();
  EXPECT_TRUE(std::is_sorted(offs.begin(), offs.end()));
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), g.num_edges());
}

TEST(Compressed, DegreesMatchEdgeListCounts) {
  const EdgeList g = erdos_renyi(200, 3000, 7);
  const auto csr = Compressed::by_source(g);
  const auto csc = Compressed::by_destination(g);
  const auto out = g.out_degrees();
  const auto in = g.in_degrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(csr.degree(v), out[v]);
    EXPECT_EQ(csc.degree(v), in[v]);
  }
}

}  // namespace
}  // namespace gr::graph

#include "graph/datasets.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "util/common.hpp"

namespace gr::graph {
namespace {

// The bench device memory (DESIGN.md: 4.8 GB scaled to 50 MB).
constexpr std::uint64_t kDeviceBytes = 50ull * 1000 * 1000;

TEST(Datasets, RegistryHasElevenEntries) {
  EXPECT_EQ(all_datasets().size(), 11u);
  EXPECT_EQ(in_memory_names().size(), 5u);
  EXPECT_EQ(out_of_memory_names().size(), 5u);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("no-such-graph"), util::CheckError);
  EXPECT_THROW(dataset_info("no-such-graph"), util::CheckError);
}

TEST(Datasets, InfoMatchesPaperTable1) {
  const auto& kron21 = dataset_info("kron_g500-logn21");
  EXPECT_TRUE(kron21.out_of_memory);
  EXPECT_EQ(kron21.paper_vertices, 2'097'152u);
  EXPECT_EQ(kron21.paper_edges, 91'042'010u);
  const auto& ak = dataset_info("ak2010");
  EXPECT_FALSE(ak.out_of_memory);
}

TEST(Datasets, FootprintModelMatchesPaperSizes) {
  // Paper sizes are ~54 B/edge; check we land within 15% for the large
  // datasets where the model matters.
  struct Row {
    const char* name;
    double paper_gb;
  };
  for (const Row& row : {Row{"kron_g500-logn21", 4.84},
                         Row{"nlpkkt160", 11.9},
                         Row{"uk-2002", 16.4},
                         Row{"orkut", 6.2},
                         Row{"cage15", 5.4}}) {
    const auto& info = dataset_info(row.name);
    const double model_gb =
        static_cast<double>(
            footprint_bytes(info.paper_vertices, info.paper_edges)) /
        1e9;
    EXPECT_NEAR(model_gb, row.paper_gb, row.paper_gb * 0.15) << row.name;
  }
}

class DatasetParam : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetParam, GeneratesValidNonTrivialGraph) {
  const EdgeList g = make_dataset(GetParam(), 0.05);
  g.validate();
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST_P(DatasetParam, ScaledClassificationMatchesPaper) {
  const EdgeList g = make_dataset(GetParam());
  const auto& info = dataset_info(GetParam());
  const std::uint64_t bytes =
      footprint_bytes(g.num_vertices(), g.num_edges());
  if (info.out_of_memory)
    EXPECT_GT(bytes, kDeviceBytes) << GetParam();
  else
    EXPECT_LT(bytes, kDeviceBytes) << GetParam();
}

TEST_P(DatasetParam, GenerationIsDeterministic) {
  const EdgeList a = make_dataset(GetParam(), 0.02);
  const EdgeList b = make_dataset(GetParam(), 0.02);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); i += 17)
    EXPECT_EQ(a.edge(i), b.edge(i));
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetParam,
    ::testing::Values("ak2010", "coAuthorsDBLP", "kron_g500-logn20",
                      "webbase-1M", "belgium_osm", "delaunay_n13",
                      "kron_g500-logn21", "nlpkkt160", "uk-2002", "orkut",
                      "cage15"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Datasets, FamiliesHaveExpectedShape) {
  // Road analog: near-constant low degree, high diameter.
  const EdgeList road = make_dataset("ak2010");
  EXPECT_LT(degree_stats(road).mean, 5.0);
  EXPECT_GT(eccentricity(road, 0), 30u);
  // Kronecker analog: heavy skew.
  const EdgeList kron = make_dataset("kron_g500-logn20", 0.25);
  const auto ks = degree_stats(kron);
  EXPECT_GT(static_cast<double>(ks.max), 20.0 * ks.mean);
  // Grid analog: tight degree bound (<= 26), single component.
  const EdgeList grid = make_dataset("nlpkkt160", 0.05);
  EXPECT_LE(degree_stats(grid).max, 26u);
  EXPECT_EQ(weak_component_count(grid), 1u);
}

TEST(Datasets, OrkutIsSymmetric) {
  const EdgeList g = make_dataset("orkut", 0.02);
  const EdgeId half = g.num_edges() / 2;
  ASSERT_EQ(g.num_edges(), 2 * half);
  for (EdgeId i = 0; i < half; i += 11) {
    EXPECT_EQ(g.edge(half + i).src, g.edge(i).dst);
    EXPECT_EQ(g.edge(half + i).dst, g.edge(i).src);
  }
}

}  // namespace
}  // namespace gr::graph

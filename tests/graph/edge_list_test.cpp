#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

namespace gr::graph {
namespace {

TEST(EdgeList, AddAndQueryEdges) {
  EdgeList g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(1), (Edge{1, 2}));
  EXPECT_FALSE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weight(0), 1.0f);  // unweighted default
}

TEST(EdgeList, OutOfRangeEndpointThrows) {
  EdgeList g(2);
  EXPECT_THROW(g.add_edge(0, 2), util::CheckError);
  EXPECT_THROW(g.add_edge(5, 0), util::CheckError);
}

TEST(EdgeList, WeightedEdges) {
  EdgeList g(3);
  g.add_edge(0, 1, 2.5f);
  g.add_edge(1, 2, 0.5f);
  EXPECT_TRUE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weight(0), 2.5f);
  EXPECT_FLOAT_EQ(g.weight(1), 0.5f);
}

TEST(EdgeList, MixingWeightedAndUnweightedAddsThrows) {
  EdgeList g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 2, 1.0f), util::CheckError);
}

TEST(EdgeList, RandomizeWeightsIsDeterministic) {
  EdgeList a(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  EdgeList b = a;
  a.randomize_weights(1.0f, 64.0f, 99);
  b.randomize_weights(1.0f, 64.0f, 99);
  ASSERT_TRUE(a.has_weights());
  for (EdgeId i = 0; i < a.num_edges(); ++i) {
    EXPECT_FLOAT_EQ(a.weight(i), b.weight(i));
    EXPECT_GE(a.weight(i), 1.0f);
    EXPECT_LT(a.weight(i), 64.0f);
  }
}

TEST(EdgeList, MakeUndirectedAddsReverses) {
  EdgeList g(3);
  g.add_edge(0, 1, 3.0f);
  g.make_undirected();
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(1), (Edge{1, 0}));
  EXPECT_FLOAT_EQ(g.weight(1), 3.0f);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList g(3);
  g.add_edge(0, 0, 1.0f);
  g.add_edge(0, 1, 2.0f);
  g.add_edge(2, 2, 3.0f);
  g.remove_self_loops();
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_FLOAT_EQ(g.weight(0), 2.0f);
}

TEST(EdgeList, SortAndDedupKeepsFirstWeight) {
  EdgeList g(3);
  g.add_edge(1, 2, 9.0f);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 4.0f);  // duplicate of first edge
  g.sort_and_dedup();
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{1, 2}));
  EXPECT_FLOAT_EQ(g.weight(1), 9.0f);
}

TEST(EdgeList, Degrees) {
  EdgeList g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  const auto out = g.out_degrees();
  const auto in = g.in_degrees();
  EXPECT_EQ(out, (std::vector<EdgeId>{2, 0, 1, 0}));
  EXPECT_EQ(in, (std::vector<EdgeId>{0, 2, 1, 0}));
}

TEST(EdgeList, SetNumVerticesOnlyGrows) {
  EdgeList g(4);
  g.set_num_vertices(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_THROW(g.set_num_vertices(5), util::CheckError);
}

TEST(EdgeList, ConstructionValidatesEdges) {
  std::vector<Edge> bad = {{0, 7}};
  EXPECT_THROW(EdgeList(3, std::move(bad)), util::CheckError);
}

}  // namespace
}  // namespace gr::graph

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/stats.hpp"

namespace gr::graph {
namespace {

TEST(Generators, RmatEdgeCountAndRange) {
  const EdgeList g = rmat(10, 5000, 1);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_LE(g.num_edges(), 5000u);
  EXPECT_GE(g.num_edges(), 4900u);  // only rare self-loop discards
  g.validate();
}

TEST(Generators, RmatIsDeterministic) {
  const EdgeList a = rmat(8, 1000, 7);
  const EdgeList b = rmat(8, 1000, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Generators, RmatSkewProducesHighMaxDegree) {
  const EdgeList g = rmat(12, 40000, 3);
  const auto stats = degree_stats(g);
  // Power-law-ish: max degree far above mean.
  EXPECT_GT(static_cast<double>(stats.max), 10.0 * stats.mean);
}

TEST(Generators, RmatSymmetricHasReversePairs) {
  const EdgeList g = rmat(6, 200, 5, RmatOptions{.symmetric = true});
  EXPECT_EQ(g.num_edges() % 2, 0u);
  const EdgeId half = g.num_edges() / 2;
  for (EdgeId i = 0; i < half; ++i) {
    EXPECT_EQ(g.edge(half + i).src, g.edge(i).dst);
    EXPECT_EQ(g.edge(half + i).dst, g.edge(i).src);
  }
}

TEST(Generators, RmatNoSelfLoopsByDefault) {
  const EdgeList g = rmat(8, 3000, 11);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(Generators, ErdosRenyiBasicShape) {
  const EdgeList g = erdos_renyi(100, 1000, 2);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 1000u);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(Generators, Grid2dStructure) {
  const EdgeList g = grid2d(3, 2);
  EXPECT_EQ(g.num_vertices(), 6u);
  // Undirected lattice edges: horizontal 2*2=4, vertical 3 -> 7 pairs,
  // 14 directed edges.
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(weak_component_count(g), 1u);
}

TEST(Generators, Grid3dSixStencilDegree) {
  const EdgeList g = grid3d(3, 3, 3, /*full_stencil=*/false);
  EXPECT_EQ(g.num_vertices(), 27u);
  // 6-stencil: undirected pairs = 3 * 3*3*2 = 54 -> 108 directed.
  EXPECT_EQ(g.num_edges(), 108u);
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.max, 6u);  // interior vertex
}

TEST(Generators, Grid3dFullStencilInteriorDegree) {
  const EdgeList g = grid3d(5, 5, 5, /*full_stencil=*/true);
  const auto out = g.out_degrees();
  // Central vertex (2,2,2) has all 26 neighbours.
  const VertexId center = (2 * 5 + 2) * 5 + 2;
  EXPECT_EQ(out[center], 26u);
  EXPECT_EQ(weak_component_count(g), 1u);
}

TEST(Generators, Grid3dFullStencilHasNoDuplicateEdges) {
  EdgeList g = grid3d(4, 4, 4, true);
  const EdgeId before = g.num_edges();
  g.sort_and_dedup();
  EXPECT_EQ(g.num_edges(), before);
}

TEST(Generators, RoadNetworkIsSparseHighDiameter) {
  const EdgeList g = road_network(40, 40, 9);
  const auto stats = degree_stats(g);
  EXPECT_LT(stats.mean, 4.5);
  // A lattice-like graph has eccentricity comparable to its side length.
  EXPECT_GT(eccentricity(g, 0), 20u);
}

TEST(Generators, WattsStrogatzDegreeAndDeterminism) {
  const EdgeList a = watts_strogatz(100, 2, 0.1, 4);
  EXPECT_EQ(a.num_edges(), 400u);  // n*k ring pairs, both directions
  const EdgeList b = watts_strogatz(100, 2, 0.1, 4);
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Generators, TriangulatedGridAddsDiagonals) {
  const EdgeList plain = grid2d(4, 4);
  const EdgeList tri = triangulated_grid(4, 4);
  EXPECT_EQ(tri.num_edges(), plain.num_edges() + 2u * 9u);
}

TEST(Generators, TinyGraphs) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(star_graph(5).num_edges(), 8u);
  EXPECT_EQ(complete_graph(4).num_edges(), 12u);
  const EdgeList cycles = two_cycles(4);
  EXPECT_EQ(cycles.num_vertices(), 8u);
  EXPECT_EQ(weak_component_count(cycles), 2u);
}

}  // namespace
}  // namespace gr::graph

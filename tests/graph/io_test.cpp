#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::graph {
namespace {

EdgeList weighted_sample() {
  EdgeList g(5);
  g.add_edge(0, 1, 2.5f);
  g.add_edge(3, 4, 0.25f);
  g.add_edge(1, 0, 7.0f);
  return g;
}

TEST(Io, TextRoundTripWeighted) {
  std::stringstream ss;
  write_text(ss, weighted_sample());
  const EdgeList back = read_text(ss);
  EXPECT_EQ(back.num_vertices(), 5u);
  ASSERT_EQ(back.num_edges(), 3u);
  EXPECT_EQ(back.edge(1), (Edge{3, 4}));
  ASSERT_TRUE(back.has_weights());
  EXPECT_FLOAT_EQ(back.weight(1), 0.25f);
}

TEST(Io, TextRoundTripUnweighted) {
  std::stringstream ss;
  write_text(ss, path_graph(4));
  const EdgeList back = read_text(ss);
  EXPECT_EQ(back.num_edges(), 3u);
  EXPECT_FALSE(back.has_weights());
}

TEST(Io, TextReaderInfersVertexCountWithoutHeader) {
  std::istringstream is("0 9\n2 3\n");
  const EdgeList g = read_text(is);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, TextReaderSkipsComments) {
  std::istringstream is("# a comment\n0 1\n# another\n1 2\n");
  EXPECT_EQ(read_text(is).num_edges(), 2u);
}

TEST(Io, TextReaderRejectsGarbage) {
  std::istringstream is("zero one\n");
  EXPECT_THROW(read_text(is), util::CheckError);
}

TEST(Io, BinaryRoundTripWeighted) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const EdgeList original = weighted_sample();
  write_binary(ss, original);
  const EdgeList back = read_binary(ss);
  ASSERT_EQ(back.num_edges(), original.num_edges());
  EXPECT_EQ(back.num_vertices(), original.num_vertices());
  for (EdgeId i = 0; i < back.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i), original.edge(i));
    EXPECT_FLOAT_EQ(back.weight(i), original.weight(i));
  }
}

TEST(Io, BinaryRoundTripLargeUnweighted) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const EdgeList original = erdos_renyi(1000, 20000, 3);
  write_binary(ss, original);
  const EdgeList back = read_binary(ss);
  ASSERT_EQ(back.num_edges(), original.num_edges());
  EXPECT_FALSE(back.has_weights());
  for (EdgeId i = 0; i < back.num_edges(); i += 97)
    EXPECT_EQ(back.edge(i), original.edge(i));
}

TEST(Io, BinaryRejectsBadMagic) {
  std::istringstream is("THIS IS NOT A GRAPH FILE AT ALL");
  EXPECT_THROW(read_binary(is), util::CheckError);
}

TEST(Io, BinaryRejectsTruncatedStream) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, weighted_sample());
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(is), util::CheckError);
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gr_io_test.bin";
  save_binary(path, weighted_sample());
  const EdgeList back = load_binary(path);
  EXPECT_EQ(back.num_edges(), 3u);
  const std::string text_path = ::testing::TempDir() + "/gr_io_test.txt";
  save_text(text_path, back);
  EXPECT_EQ(load_text(text_path).num_edges(), 3u);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_text("/nonexistent/nope.txt"), util::CheckError);
  EXPECT_THROW(load_binary("/nonexistent/nope.bin"), util::CheckError);
}

}  // namespace
}  // namespace gr::graph

#include "graph/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/common.hpp"

namespace gr::graph {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 5.5\n"
      "3 1 -2.0\n");
  const EdgeList g = read_matrix_market(is);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 2u);
  // (r=1, c=2) => edge 1 -> 0 with weight 5.5 (column is the source).
  EXPECT_EQ(g.edge(0), (Edge{1, 0}));
  EXPECT_FLOAT_EQ(g.weight(0), 5.5f);
  EXPECT_EQ(g.edge(1), (Edge{0, 2}));
  EXPECT_FLOAT_EQ(g.weight(1), -2.0f);
}

TEST(MatrixMarket, PatternHasNoWeights) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "2 1\n");
  const EdgeList g = read_matrix_market(is);
  EXPECT_FALSE(g.has_weights());
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
}

TEST(MatrixMarket, SymmetricExpandsToDirectedPairs) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 1.0\n"
      "3 3 4.0\n");
  const EdgeList g = read_matrix_market(is);
  // Off-diagonal entry doubles; diagonal stays a single self-loop.
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{1, 0}));
  EXPECT_EQ(g.edge(2), (Edge{2, 2}));
}

TEST(MatrixMarket, CaseInsensitiveHeader) {
  std::istringstream is(
      "%%MatrixMarket MATRIX Coordinate Real General\n"
      "1 1 1\n"
      "1 1 2.0\n");
  EXPECT_EQ(read_matrix_market(is).num_edges(), 1u);
}

TEST(MatrixMarket, RejectsBadBannerAndFormats) {
  std::istringstream no_banner("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(no_banner), util::CheckError);
  std::istringstream array_fmt(
      "%%MatrixMarket matrix array real general\n2 2\n1.0\n");
  EXPECT_THROW(read_matrix_market(array_fmt), util::CheckError);
  std::istringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_field), util::CheckError);
}

TEST(MatrixMarket, RejectsOutOfRangeAndTruncation) {
  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_range), util::CheckError);
  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), util::CheckError);
}

TEST(MatrixMarket, RoundTripWeighted) {
  EdgeList g = erdos_renyi(40, 300, 4);
  g.randomize_weights(0.5f, 2.0f, 9);
  std::stringstream ss;
  write_matrix_market(ss, g);
  const EdgeList back = read_matrix_market(ss);
  ASSERT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i), g.edge(i));
    EXPECT_NEAR(back.weight(i), g.weight(i), 1e-5f);
  }
}

TEST(MatrixMarket, RoundTripPattern) {
  const EdgeList g = path_graph(10);
  std::stringstream ss;
  write_matrix_market(ss, g);
  const EdgeList back = read_matrix_market(ss);
  EXPECT_FALSE(back.has_weights());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(back.edge(i), g.edge(i));
}

TEST(MatrixMarket, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gr_mm_test.mtx";
  save_matrix_market(path, cycle_graph(6));
  EXPECT_EQ(load_matrix_market(path).num_edges(), 6u);
  EXPECT_THROW(load_matrix_market("/nonexistent/x.mtx"), util::CheckError);
}

}  // namespace
}  // namespace gr::graph

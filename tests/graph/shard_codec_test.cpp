// Round-trip contract of the delta+varint shard codec (hybrid transfer
// management): every u32/u64 sequence — including adversarial degree
// distributions — must decode bit-exactly, and a malformed blob must
// GR_CHECK-fail rather than truncate silently.
#include "graph/shard_codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/common.hpp"

namespace gr::graph {
namespace {

template <typename T>
void expect_roundtrip(const std::vector<T>& values) {
  const std::vector<std::uint8_t> blob =
      delta_varint_encode(values.data(), values.size());
  std::vector<T> decoded(values.size());
  delta_varint_decode(blob.data(), blob.size(), decoded.data(),
                      decoded.size());
  EXPECT_EQ(decoded, values);
}

TEST(ShardCodec, EmptyAndSingle) {
  expect_roundtrip(std::vector<std::uint32_t>{});
  expect_roundtrip(std::vector<std::uint64_t>{});
  expect_roundtrip(std::vector<std::uint32_t>{0});
  expect_roundtrip(std::vector<std::uint32_t>{4000000000u});
  expect_roundtrip(std::vector<std::uint64_t>{0});
  expect_roundtrip(
      std::vector<std::uint64_t>{std::numeric_limits<std::uint64_t>::max()});
}

TEST(ShardCodec, MonotoneOffsetsCompressWell) {
  // A CSC offset array of a low-degree shard: tiny positive deltas.
  std::vector<std::uint64_t> offsets;
  std::uint64_t cursor = 0;
  for (int v = 0; v < 4096; ++v) {
    offsets.push_back(cursor);
    cursor += static_cast<std::uint64_t>(v % 7);
  }
  offsets.push_back(cursor);
  const std::vector<std::uint8_t> blob =
      delta_varint_encode(offsets.data(), offsets.size());
  // Monotone tiny-delta u64 data should shrink far below 8 B/element.
  EXPECT_LT(blob.size(), offsets.size() * 2);
  std::vector<std::uint64_t> decoded(offsets.size());
  delta_varint_decode(blob.data(), blob.size(), decoded.data(),
                      decoded.size());
  EXPECT_EQ(decoded, offsets);
}

TEST(ShardCodec, RandomSequencesRoundTrip) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<std::uint32_t> u32s;
  std::vector<std::uint64_t> u64s;
  for (int i = 0; i < 10000; ++i) {
    u32s.push_back(static_cast<std::uint32_t>(next()));
    u64s.push_back(next());
  }
  expect_roundtrip(u32s);
  expect_roundtrip(u64s);
}

TEST(ShardCodec, AdversarialExtremesRoundTrip) {
  // Alternating 0 / max forces the worst-case wrap-around deltas.
  std::vector<std::uint32_t> alt32;
  std::vector<std::uint64_t> alt64;
  for (int i = 0; i < 1000; ++i) {
    alt32.push_back(i % 2 ? std::numeric_limits<std::uint32_t>::max() : 0);
    alt64.push_back(i % 2 ? std::numeric_limits<std::uint64_t>::max() : 0);
  }
  expect_roundtrip(alt32);
  expect_roundtrip(alt64);

  // Strictly decreasing sequences: every delta is "negative" (wraps).
  std::vector<std::uint64_t> dec;
  for (std::uint64_t i = 100000; i-- > 0;) dec.push_back(i * 37);
  expect_roundtrip(dec);
}

TEST(ShardCodec, PowerLawDegreesRoundTrip) {
  // RMAT-ish skew: a few huge deltas among many tiny ones.
  std::vector<std::uint64_t> offsets;
  std::uint64_t cursor = 0, lcg = 12345;
  for (int v = 0; v < 20000; ++v) {
    offsets.push_back(cursor);
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t r = lcg >> 33;
    // ~1/256 vertices are hubs with huge degree.
    cursor += (r % 256 == 0) ? (r % 1000000) : (r % 4);
  }
  offsets.push_back(cursor);
  expect_roundtrip(offsets);
}

TEST(ShardCodec, WorstCaseExpansionIsBounded) {
  std::vector<std::uint32_t> alt32;
  std::vector<std::uint64_t> alt64;
  for (int i = 0; i < 257; ++i) {
    alt32.push_back(i % 2 ? std::numeric_limits<std::uint32_t>::max() : 1);
    alt64.push_back(i % 2 ? std::numeric_limits<std::uint64_t>::max() : 1);
  }
  EXPECT_LE(delta_varint_encode(alt32.data(), alt32.size()).size(),
            alt32.size() * 5);
  EXPECT_LE(delta_varint_encode(alt64.data(), alt64.size()).size(),
            alt64.size() * 10);
}

TEST(ShardCodec, MalformedBlobIsRejected) {
  const std::vector<std::uint32_t> values{1, 2, 3, 4};
  std::vector<std::uint8_t> blob =
      delta_varint_encode(values.data(), values.size());
  std::vector<std::uint32_t> out(values.size());
  // Truncated blob: fewer varints than elements.
  EXPECT_THROW(delta_varint_decode(blob.data(), blob.size() - 1, out.data(),
                                   out.size()),
               util::CheckError);
  // Trailing garbage: blob not fully consumed.
  blob.push_back(0);
  EXPECT_THROW(
      delta_varint_decode(blob.data(), blob.size(), out.data(), out.size()),
      util::CheckError);
}

}  // namespace
}  // namespace gr::graph

#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gr::graph {
namespace {

TEST(Stats, DegreeStatsOnStar) {
  const EdgeList g = star_graph(10);
  const auto s = degree_stats(g);
  EXPECT_EQ(s.max, 9u);   // hub out-degree
  EXPECT_EQ(s.min, 1u);   // spokes
  EXPECT_EQ(s.isolated, 0u);
  EXPECT_NEAR(s.mean, 18.0 / 10.0, 1e-12);
}

TEST(Stats, IsolatedVerticesCounted) {
  EdgeList g(5);
  g.add_edge(0, 1);
  EXPECT_EQ(degree_stats(g).isolated, 3u);
}

TEST(Stats, ReachableCountOnPath) {
  const EdgeList g = path_graph(6);
  EXPECT_EQ(reachable_count(g, 0), 6u);
  EXPECT_EQ(reachable_count(g, 3), 3u);  // 3, 4, 5
  EXPECT_EQ(reachable_count(g, 5), 1u);
}

TEST(Stats, WeakComponents) {
  EXPECT_EQ(weak_component_count(path_graph(5)), 1u);
  EXPECT_EQ(weak_component_count(two_cycles(6)), 2u);
  EdgeList isolated(4);
  EXPECT_EQ(weak_component_count(isolated), 4u);
}

TEST(Stats, EccentricityOnPathAndCycle) {
  EXPECT_EQ(eccentricity(path_graph(10), 0), 9u);
  EXPECT_EQ(eccentricity(cycle_graph(10), 0), 9u);  // directed cycle
  const EdgeList g = grid2d(5, 5);
  EXPECT_EQ(eccentricity(g, 0), 8u);  // manhattan distance to far corner
}

}  // namespace
}  // namespace gr::graph

#include "graph/transforms.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace gr::graph {
namespace {

TEST(Transforms, PermuteRelabelsEndpointsAndKeepsWeights) {
  EdgeList g(3);
  g.add_edge(0, 1, 2.0f);
  g.add_edge(1, 2, 3.0f);
  const std::vector<VertexId> perm = {2, 0, 1};
  const EdgeList p = permute_vertices(g, perm);
  EXPECT_EQ(p.edge(0), (Edge{2, 0}));
  EXPECT_EQ(p.edge(1), (Edge{0, 1}));
  EXPECT_FLOAT_EQ(p.weight(1), 3.0f);
}

TEST(Transforms, PermuteRejectsNonBijection) {
  EdgeList g(3);
  g.add_edge(0, 1);
  const std::vector<VertexId> dup = {0, 0, 1};
  EXPECT_THROW(permute_vertices(g, dup), util::CheckError);
  const std::vector<VertexId> out_of_range = {0, 1, 5};
  EXPECT_THROW(permute_vertices(g, out_of_range), util::CheckError);
}

TEST(Transforms, PermutePreservesDegreeMultiset) {
  const EdgeList g = rmat(8, 1500, 3);
  const auto perm = random_order(g.num_vertices(), 7);
  const EdgeList p = permute_vertices(g, perm);
  auto in_a = g.in_degrees();
  auto in_b = p.in_degrees();
  std::sort(in_a.begin(), in_a.end());
  std::sort(in_b.begin(), in_b.end());
  EXPECT_EQ(in_a, in_b);
}

TEST(Transforms, BfsOrderVisitsSourceFirstAndIsBijective) {
  const EdgeList g = grid2d(8, 8);
  const auto order = bfs_order(g, 10);
  EXPECT_EQ(order[10], 0u);
  std::vector<VertexId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(sorted[v], v);
}

TEST(Transforms, BfsOrderMakesWavefrontContiguous) {
  // On a path relabeled by BFS order, edge endpoints are adjacent ids.
  EdgeList g(5);
  g.add_edge(2, 0);
  g.add_edge(0, 4);
  g.add_edge(4, 1);
  g.add_edge(1, 3);
  const EdgeList p = permute_vertices(g, bfs_order(g, 2));
  for (const Edge& e : p.edges()) EXPECT_EQ(e.dst, e.src + 1);
}

TEST(Transforms, DegreeOrderPutsHubFirst) {
  const EdgeList g = star_graph(50);
  const auto order = degree_order(g);
  EXPECT_EQ(order[0], 0u);  // the hub receives rank 0
}

TEST(Transforms, RandomOrderIsDeterministicBijection) {
  const auto a = random_order(100, 5);
  const auto b = random_order(100, 5);
  EXPECT_EQ(a, b);
  std::vector<VertexId> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(sorted[v], v);
  EXPECT_NE(a, random_order(100, 6));
}

TEST(Transforms, LargestComponentExtractsAndRemaps) {
  EdgeList g(10);
  // Component A: 0-1-2-3 (cycle); component B: 7-8.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(7, 8);
  std::vector<VertexId> back;
  const EdgeList lcc = largest_component(g, &back);
  EXPECT_EQ(lcc.num_vertices(), 4u);
  EXPECT_EQ(lcc.num_edges(), 4u);
  EXPECT_EQ(weak_component_count(lcc), 1u);
  EXPECT_EQ(back, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Transforms, LargestComponentOnConnectedGraphIsIdentitySized) {
  const EdgeList g = grid2d(6, 6);
  const EdgeList lcc = largest_component(g);
  EXPECT_EQ(lcc.num_vertices(), g.num_vertices());
  EXPECT_EQ(lcc.num_edges(), g.num_edges());
}

TEST(Transforms, TransposeSwapsDegreesAndKeepsWeights) {
  EdgeList g(4);
  g.add_edge(0, 1, 5.0f);
  g.add_edge(0, 2, 6.0f);
  const EdgeList t = transpose(g);
  EXPECT_EQ(t.out_degrees(), g.in_degrees());
  EXPECT_EQ(t.in_degrees(), g.out_degrees());
  EXPECT_EQ(t.edge(0), (Edge{1, 0}));
  EXPECT_FLOAT_EQ(t.weight(0), 5.0f);
}

TEST(Transforms, DoubleTransposeIsIdentity) {
  const EdgeList g = erdos_renyi(50, 400, 9);
  const EdgeList tt = transpose(transpose(g));
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(tt.edge(i), g.edge(i));
}

}  // namespace
}  // namespace gr::graph

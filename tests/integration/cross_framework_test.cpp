// End-to-end agreement: GraphReduce and all four baseline frameworks
// compute identical (or tolerance-equal) answers on miniature versions
// of every Table 1 dataset analog — the exact configuration the benches
// measure, validated for correctness here.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cusha/cusha.hpp"
#include "baselines/graphchi/graphchi.hpp"
#include "baselines/mapgraph/mapgraph.hpp"
#include "baselines/reference/serial.hpp"
#include "baselines/xstream/xstream.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/datasets.hpp"

namespace gr {
namespace {

namespace ref = baselines::reference;

struct Prepared {
  graph::EdgeList edges;
  graph::VertexId source;
};

Prepared mini_dataset(const std::string& name) {
  Prepared data;
  data.edges = graph::make_dataset(name, 0.02);
  data.edges.randomize_weights(1.0f, 32.0f, 11);
  const auto deg = data.edges.out_degrees();
  data.source = 0;
  for (graph::VertexId v = 0; v < data.edges.num_vertices(); ++v)
    if (deg[v] > deg[data.source]) data.source = v;
  return data;
}

core::EngineOptions small_device() {
  core::EngineOptions options;
  // Small enough that several analogs stream instead of staying
  // resident, exercising the out-of-memory path end to end.
  options.device.global_memory_bytes = 512 * 1024;
  return options;
}

class DatasetAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetAgreement, BfsAgreesEverywhere) {
  const Prepared data = mini_dataset(GetParam());
  const auto expected = ref::bfs_depths(data.edges, data.source);
  const auto gr = algo::run_bfs(data.edges, data.source, small_device());
  const auto xs = baselines::xstream::run_bfs(data.edges, data.source);
  const auto gc = baselines::graphchi::run_bfs(data.edges, data.source);
  const auto mg = baselines::mapgraph::run_bfs(data.edges, data.source);
  const auto cs = baselines::cusha::run_bfs(data.edges, data.source);
  for (graph::VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(gr.depth[v], expected[v]) << "GR v" << v;
    ASSERT_EQ(xs.values[v], expected[v]) << "X-Stream v" << v;
    ASSERT_EQ(gc.values[v], expected[v]) << "GraphChi v" << v;
    ASSERT_EQ(mg.values[v], expected[v]) << "MapGraph v" << v;
    ASSERT_EQ(cs.values[v], expected[v]) << "CuSha v" << v;
  }
}

TEST_P(DatasetAgreement, SsspAgreesEverywhere) {
  const Prepared data = mini_dataset(GetParam());
  const auto expected = ref::sssp_distances(data.edges, data.source);
  const auto gr = algo::run_sssp(data.edges, data.source, small_device());
  const auto xs = baselines::xstream::run_sssp(data.edges, data.source);
  const auto gc = baselines::graphchi::run_sssp(data.edges, data.source);
  auto check = [&](std::span<const float> got, const char* who) {
    for (graph::VertexId v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        ASSERT_TRUE(std::isinf(got[v])) << who << " v" << v;
      } else {
        ASSERT_NEAR(got[v], expected[v], 1e-2f * (1.0f + expected[v]))
            << who << " v" << v;
      }
    }
  };
  check(gr.distance, "GR");
  check(xs.values, "X-Stream");
  check(gc.values, "GraphChi");
}

TEST_P(DatasetAgreement, CcAgreesEverywhere) {
  const Prepared data = mini_dataset(GetParam());
  const auto expected = ref::min_label_fixpoint(data.edges);
  const auto gr = algo::run_cc(data.edges, small_device());
  const auto xs = baselines::xstream::run_cc(data.edges);
  const auto gc = baselines::graphchi::run_cc(data.edges);
  const auto mg = baselines::mapgraph::run_cc(data.edges);
  const auto cs = baselines::cusha::run_cc(data.edges);
  for (graph::VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(gr.label[v], expected[v]) << "GR v" << v;
    ASSERT_EQ(xs.values[v], expected[v]) << "X-Stream v" << v;
    ASSERT_EQ(gc.values[v], expected[v]) << "GraphChi v" << v;
    ASSERT_EQ(mg.values[v], expected[v]) << "MapGraph v" << v;
    ASSERT_EQ(cs.values[v], expected[v]) << "CuSha v" << v;
  }
}

TEST_P(DatasetAgreement, PageRankWithinTolerance) {
  const Prepared data = mini_dataset(GetParam());
  const auto expected = ref::pagerank(data.edges, 40);
  const auto gr = algo::run_pagerank(data.edges, 40, small_device());
  const auto gc = baselines::graphchi::run_pagerank(data.edges, 40);
  const auto cs = baselines::cusha::run_pagerank(data.edges, 40);
  double worst = 0.0;
  for (graph::VertexId v = 0; v < expected.size(); ++v) {
    worst = std::max(worst, std::abs(double(gr.rank[v]) - expected[v]));
    worst = std::max(worst, std::abs(double(gc.values[v]) - expected[v]));
    worst = std::max(worst, std::abs(double(cs.values[v]) - expected[v]));
  }
  EXPECT_LT(worst, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllAnalogs, DatasetAgreement,
    ::testing::Values("ak2010", "coAuthorsDBLP", "kron_g500-logn20",
                      "webbase-1M", "belgium_osm", "kron_g500-logn21",
                      "nlpkkt160", "uk-2002", "orkut", "cage15"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace gr

// File-to-result pipelines: graphs written to disk in each supported
// format, reloaded, and pushed through the engine — the workflow a
// downstream user actually runs.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference/serial.hpp"
#include "core/algorithms/algorithms.hpp"
#include "graph/io.hpp"
#include "graph/matrix_market.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"

namespace gr {
namespace {

namespace ref = baselines::reference;
using graph::EdgeList;
using graph::VertexId;

TEST(IoPipeline, MatrixMarketToSpmv) {
  // Write a weighted matrix, reload it, and verify y = A x end to end.
  EdgeList original = graph::erdos_renyi(120, 900, 3);
  original.randomize_weights(0.1f, 1.5f, 4);
  const std::string path = ::testing::TempDir() + "/pipeline.mtx";
  graph::save_matrix_market(path, original);
  const EdgeList loaded = graph::load_matrix_market(path);

  std::vector<float> x(loaded.num_vertices());
  for (VertexId v = 0; v < loaded.num_vertices(); ++v)
    x[v] = 0.5f + 0.01f * static_cast<float>(v);
  const auto gas = algo::run_spmv(loaded, x);
  const auto expected = ref::spmv(original, x);
  for (VertexId v = 0; v < loaded.num_vertices(); ++v)
    ASSERT_NEAR(gas.y[v], expected[v], 1e-3f + 1e-4f * std::abs(expected[v]))
        << v;
}

TEST(IoPipeline, BinaryRoundTripToSssp) {
  EdgeList original = graph::rmat(9, 2600, 8);
  original.randomize_weights(1.0f, 8.0f, 2);
  const std::string path = ::testing::TempDir() + "/pipeline.bin";
  graph::save_binary(path, original);
  const EdgeList loaded = graph::load_binary(path);
  const auto result = algo::run_sssp(loaded, 0);
  const auto expected = ref::sssp_distances(original, 0);
  for (VertexId v = 0; v < loaded.num_vertices(); ++v) {
    if (std::isinf(expected[v]))
      ASSERT_TRUE(std::isinf(result.distance[v])) << v;
    else
      ASSERT_NEAR(result.distance[v], expected[v],
                  1e-3f * (1.0f + expected[v]))
          << v;
  }
}

TEST(IoPipeline, TextRoundTripToBfsAfterRelabel) {
  // Text save -> load -> BFS-relabel -> BFS depths are permuted copies.
  const EdgeList original = graph::grid2d(12, 12);
  const std::string path = ::testing::TempDir() + "/pipeline.txt";
  graph::save_text(path, original);
  const EdgeList loaded = graph::load_text(path);
  const auto perm = graph::bfs_order(loaded, 0);
  const EdgeList relabeled = graph::permute_vertices(loaded, perm);
  const auto base = algo::run_bfs(loaded, 0);
  const auto permuted = algo::run_bfs(relabeled, perm[0]);
  for (VertexId v = 0; v < loaded.num_vertices(); ++v)
    ASSERT_EQ(permuted.depth[perm[v]], base.depth[v]) << v;
}

TEST(IoPipeline, LargestComponentThenCc) {
  // Extracting the largest component leaves a graph whose CC labels are
  // all one component.
  EdgeList g = graph::two_cycles(50);
  g.make_undirected();
  const EdgeList lcc = graph::largest_component(g);
  const auto result = algo::run_cc(lcc);
  for (std::uint32_t label : result.label) ASSERT_EQ(label, 0u);
}

}  // namespace
}  // namespace gr

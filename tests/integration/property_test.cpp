// Property-based sweeps: structural invariants of each algorithm's
// output that must hold on ANY graph, checked over a grid of generator
// families x seeds (parameterized), independent of the serial oracles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace gr {
namespace {

struct SweepCase {
  const char* family;
  std::uint64_t seed;
};

graph::EdgeList make_graph(const SweepCase& c) {
  if (std::string(c.family) == "rmat") return graph::rmat(9, 3000, c.seed);
  if (std::string(c.family) == "er")
    return graph::erdos_renyi(400, 2800, c.seed);
  if (std::string(c.family) == "road")
    return graph::road_network(24, 24, c.seed);
  return graph::watts_strogatz(300, 2, 0.2, c.seed);
}

class AlgorithmProperties : public ::testing::TestWithParam<SweepCase> {
 protected:
  graph::EdgeList graph_ = make_graph(GetParam());
};

TEST_P(AlgorithmProperties, BfsDepthsSatisfyEdgeRelaxation) {
  const auto result = algo::run_bfs(graph_, 0);
  const auto& depth = result.depth;
  EXPECT_EQ(depth[0], 0u);
  for (const graph::Edge& e : graph_.edges()) {
    if (depth[e.src] == algo::Bfs::kUnreached) continue;
    // Every edge out of a reached vertex is relaxed: depth[dst] is at
    // most depth[src] + 1, and dst is reached.
    ASSERT_LE(depth[e.dst], depth[e.src] + 1)
        << e.src << "->" << e.dst;
  }
  // Depth levels are contiguous: if depth d > 0 occurs, so does d - 1.
  std::vector<char> seen(graph_.num_vertices() + 2, 0);
  std::uint32_t max_depth = 0;
  for (std::uint32_t d : depth) {
    if (d == algo::Bfs::kUnreached) continue;
    seen[d] = 1;
    max_depth = std::max(max_depth, d);
  }
  for (std::uint32_t d = 0; d <= max_depth; ++d)
    ASSERT_TRUE(seen[d]) << "depth gap at " << d;
}

TEST_P(AlgorithmProperties, SsspDistancesAreAFixpoint) {
  graph_.randomize_weights(1.0f, 8.0f, GetParam().seed ^ 0xABCD);
  const auto result = algo::run_sssp(graph_, 0);
  const auto& dist = result.distance;
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  for (graph::EdgeId i = 0; i < graph_.num_edges(); ++i) {
    const graph::Edge& e = graph_.edge(i);
    if (std::isinf(dist[e.src])) continue;
    // No edge can still relax (within float tolerance).
    ASSERT_LE(dist[e.dst], dist[e.src] + graph_.weight(i) + 1e-3f)
        << e.src << "->" << e.dst;
  }
}

TEST_P(AlgorithmProperties, CcLabelsAreConsistentAndMinimal) {
  graph_.make_undirected();
  const auto result = algo::run_cc(graph_);
  const auto& label = result.label;
  // Same label across every edge (undirected graph).
  for (const graph::Edge& e : graph_.edges())
    ASSERT_EQ(label[e.src], label[e.dst]);
  // The label is a member of its own component and is the minimum.
  for (graph::VertexId v = 0; v < graph_.num_vertices(); ++v) {
    ASSERT_LE(label[v], v);
    ASSERT_EQ(label[label[v]], label[v]);
  }
}

TEST_P(AlgorithmProperties, PageRankIsPositiveAndBounded) {
  const auto result = algo::run_pagerank(graph_, 40);
  const auto in_deg = graph_.in_degrees();
  double sum = 0.0;
  for (graph::VertexId v = 0; v < graph_.num_vertices(); ++v) {
    ASSERT_GE(result.rank[v], 0.15f - 1e-4f) << v;
    ASSERT_TRUE(std::isfinite(result.rank[v]));
    // A vertex with no in-edges settles at exactly 1 - d.
    if (in_deg[v] == 0) ASSERT_NEAR(result.rank[v], 0.15f, 1e-3f);
    sum += result.rank[v];
  }
  // Total rank mass stays within [0.15 n, n] for this PR variant.
  EXPECT_GE(sum, 0.15 * graph_.num_vertices() - 1.0);
  EXPECT_LE(sum, 1.0 * graph_.num_vertices() + 1.0);
}

TEST_P(AlgorithmProperties, SpmvIsLinear) {
  graph_.randomize_weights(0.0f, 2.0f, GetParam().seed);
  const graph::VertexId n = graph_.num_vertices();
  std::vector<float> x(n);
  std::vector<float> y(n);
  util::Rng rng(GetParam().seed);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> xy(n);
  for (graph::VertexId v = 0; v < n; ++v) xy[v] = 2.0f * x[v] + y[v];
  const auto ax = algo::run_spmv(graph_, x).y;
  const auto ay = algo::run_spmv(graph_, y).y;
  const auto axy = algo::run_spmv(graph_, xy).y;
  for (graph::VertexId v = 0; v < n; ++v)
    ASSERT_NEAR(axy[v], 2.0f * ax[v] + ay[v],
                1e-2f + 1e-3f * std::abs(axy[v]))
        << v;
}

TEST_P(AlgorithmProperties, HeatApproachesEquilibriumOnUndirected) {
  graph_.make_undirected();
  const graph::VertexId n = graph_.num_vertices();
  std::vector<float> initial(n, 0.0f);
  initial[0] = float(n);
  const auto few = algo::run_heat(graph_, initial, 2).temperature;
  const auto many = algo::run_heat(graph_, initial, 30).temperature;
  // Relaxation reduces the spread between hottest and coldest vertex.
  auto spread = [](const std::vector<float>& t) {
    const auto [lo, hi] = std::minmax_element(t.begin(), t.end());
    return *hi - *lo;
  };
  EXPECT_LE(spread(many), spread(few) + 1e-3f);
}

TEST_P(AlgorithmProperties, ReportsAreInternallyConsistent) {
  const auto result = algo::run_bfs(graph_, 0);
  const core::RunReport& r = result.report;
  EXPECT_EQ(r.history.size(), r.iterations);
  EXPECT_GE(r.total_seconds, r.kernel_seconds);
  EXPECT_GT(r.bytes_h2d, 0u);  // at least the static upload
  for (const core::IterationStats& it : r.history) {
    EXPECT_EQ(it.shards_processed + it.shards_skipped, r.partitions);
    EXPECT_GT(it.active_vertices, 0u);  // loop exits on empty frontier
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* family : {"rmat", "er", "road", "ws"})
    for (std::uint64_t seed : {1ull, 2ull, 3ull})
      cases.push_back({family, seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgorithmProperties,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return std::string(info.param.family) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace gr

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace gr::obs {
namespace {

TEST(Metrics, CounterFindOrCreate) {
  Metrics metrics;
  metrics.counter("a").add(3);
  metrics.counter("a").add(4);
  EXPECT_EQ(metrics.counter_value("a"), 7u);
  EXPECT_EQ(metrics.counter_value("missing"), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Metrics metrics;
  metrics.gauge("g").set(2.5);
  metrics.gauge("g").add(1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("g"), 3.5);
}

TEST(Metrics, HistogramBucketsCountBelowBounds) {
  Metrics metrics;
  Histogram& h = metrics.histogram("h", {1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 50.0, 500.0}) h.observe(v);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(counts[1], 1u);      // 5.0
  EXPECT_EQ(counts[2], 1u);      // 50.0
  EXPECT_EQ(counts[3], 1u);      // 500.0 overflows
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
}

TEST(Metrics, HistogramPercentileInterpolatesWithinBuckets) {
  Metrics metrics;
  Histogram& h = metrics.histogram("h", {1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty histogram
  // 4 observations in [0,1], 4 in (1,2]: the median sits exactly on
  // the first bucket's upper edge, p75 halfway into the second.
  for (int i = 0; i < 4; ++i) h.observe(0.5);
  for (int i = 0; i < 4; ++i) h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);
  // Quantile ranks that land in the overflow bucket report the tracked
  // maximum — clamping to the last bound would silently under-report
  // the tail.
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Metrics, HistogramPercentileReportsMaxPastLastBound) {
  Metrics metrics;
  Histogram& h = metrics.histogram("h", {1.0, 2.0, 4.0});
  // Every observation overflows the last bound: with the whole mass in
  // the overflow bucket, any quantile must surface the real maximum
  // instead of the 4.0 bound (which no sample is even close to).
  h.observe(10.0);
  h.observe(250.0);
  h.observe(40.0);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 250.0);
  // A later in-bounds majority pulls low quantiles back to
  // interpolation while the tail keeps reporting the max.
  for (int i = 0; i < 7; ++i) h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.7), 1.0);  // rank 7 of 7 in bucket 0
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 250.0);
}

TEST(Metrics, JsonSnapshotCarriesHistogramPercentiles) {
  Metrics metrics;
  Histogram& h = metrics.histogram("lat", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);
  std::ostringstream os;
  metrics.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(Metrics, JsonSnapshotIsSortedAndDeterministic) {
  Metrics metrics;
  // Insert out of lexicographic order; the snapshot must sort.
  metrics.counter("z.last").add(1);
  metrics.counter("a.first").add(2);
  metrics.gauge("m.middle").set(0.25);
  metrics.histogram("h", {1.0}).observe(2.0);

  std::ostringstream first;
  metrics.write_json(first);
  std::ostringstream second;
  metrics.write_json(second);
  EXPECT_EQ(first.str(), second.str());

  const std::string json = first.str();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"a.first\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"m.middle\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
}

TEST(Metrics, SnapshotPathInsertsIndexBeforeExtension) {
  EXPECT_EQ(Metrics::snapshot_path("m.json", 2), "m.2.json");
  EXPECT_EQ(Metrics::snapshot_path("out/run.metrics.json", 0),
            "out/run.metrics.0.json");
  // No extension: append. A dot in a directory name is not an
  // extension.
  EXPECT_EQ(Metrics::snapshot_path("m", 0), "m.0");
  EXPECT_EQ(Metrics::snapshot_path("dir.d/m", 1), "dir.d/m.1");
}

TEST(Metrics, SnapshotEveryWritesNumberedStampedFiles) {
  const std::string pattern = ::testing::TempDir() + "snap_unit.json";
  Metrics metrics;
  metrics.set_provenance({{"dataset", "unit"}});
  metrics.counter("work").add(1);
  metrics.snapshot_every(1.0, pattern);

  metrics.maybe_snapshot(0.5);  // not due yet
  EXPECT_EQ(metrics.snapshots_written(), 0u);
  metrics.maybe_snapshot(1.0);  // due exactly at the interval
  EXPECT_EQ(metrics.snapshots_written(), 1u);
  metrics.maybe_snapshot(3.7);  // catch-up: due at 2.0 and 3.0
  EXPECT_EQ(metrics.snapshots_written(), 3u);
  metrics.maybe_snapshot(3.9);  // next due at 4.0
  EXPECT_EQ(metrics.snapshots_written(), 3u);

  for (std::uint64_t i = 0; i < 3; ++i) {
    const std::string path = Metrics::snapshot_path(pattern, i);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    // Base stamps plus the per-snapshot index and simulated due time.
    EXPECT_NE(json.find("\"dataset\": \"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"snapshot\": \"" + std::to_string(i) + "\""),
              std::string::npos)
        << path;
    EXPECT_NE(json.find("\"snapshot_sim_seconds\""), std::string::npos);
  }
  // Snapshot-only stamps must not leak into the base provenance.
  for (const auto& [key, value] : metrics.provenance())
    EXPECT_EQ(key.rfind("snapshot", 0), std::string::npos) << key;

  metrics.snapshot_every(0.0, "");  // disarm
  metrics.maybe_snapshot(100.0);
  EXPECT_EQ(metrics.snapshots_written(), 3u);
}

TEST(Metrics, FlushFinalSnapshotCoversThePartialTail) {
  const std::string pattern = ::testing::TempDir() + "snap_final.json";
  Metrics metrics;
  metrics.counter("work").add(1);
  metrics.snapshot_every(1.0, pattern);

  metrics.maybe_snapshot(1.0);  // boundary snapshot 0
  EXPECT_EQ(metrics.snapshots_written(), 1u);
  // The run ends at t=1.6: 0.6s of simulated time past the last
  // boundary would be silently dropped without the final flush.
  metrics.flush_final_snapshot(1.6);
  EXPECT_EQ(metrics.snapshots_written(), 2u);

  std::ifstream in(Metrics::snapshot_path(pattern, 1));
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  // Stamped with the actual end-of-run clock and marked final.
  EXPECT_NE(json.find("\"snapshot\": \"1\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_final\": \"true\""), std::string::npos);
  EXPECT_NE(json.find("1.600000000"), std::string::npos);
  // The final-only stamps must not leak into the base provenance.
  EXPECT_TRUE(metrics.provenance().empty());

  // Ending exactly on a boundary owes nothing extra.
  Metrics aligned;
  aligned.snapshot_every(1.0, pattern);
  aligned.maybe_snapshot(2.0);
  EXPECT_EQ(aligned.snapshots_written(), 2u);
  aligned.flush_final_snapshot(2.0);
  EXPECT_EQ(aligned.snapshots_written(), 2u);

  // Unarmed registries ignore the flush entirely.
  Metrics unarmed;
  unarmed.flush_final_snapshot(5.0);
  EXPECT_EQ(unarmed.snapshots_written(), 0u);
}

TEST(Metrics, StreamRecordsAppendNdjsonLines) {
  const std::string path = ::testing::TempDir() + "stream_unit.ndjson";
  Metrics metrics;
  metrics.counter("work").add(3);
  metrics.gauge("level").set(0.5);
  metrics.histogram("lat", {1.0}).observe(2.0);

  // Unarmed: records are silently dropped.
  metrics.stream_record(1.0);
  EXPECT_EQ(metrics.stream_records_written(), 0u);

  metrics.stream_to(path);
  metrics.stream_record(1.0);
  metrics.counter("work").add(4);
  metrics.stream_record(2.5);
  EXPECT_EQ(metrics.stream_records_written(), 2u);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // Each record is one self-contained line: seq, simulated clock, and
  // the instrument values at record time.
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"counters\":{"), std::string::npos);
  EXPECT_NE(lines[0].find("\"work\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"level\":0.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"lat\":{\"count\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"work\":7"), std::string::npos);
  EXPECT_NE(lines[1].find("\"sim_seconds\":2.5"), std::string::npos);

  // Re-arming truncates: a fresh run does not append to a stale file.
  metrics.stream_to(path);
  EXPECT_EQ(metrics.stream_records_written(), 0u);
  metrics.stream_record(9.0);
  std::ifstream again(path, std::ios::binary);
  lines.clear();
  for (std::string line; std::getline(again, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
}

// Named so the CI TSan job's -R filter picks it up: many threads hammer
// one registry; totals must be exact and the race detector quiet.
TEST(MetricsThreadSafety, ConcurrentInstrumentsCountExactly) {
  Metrics metrics;
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&metrics, t] {
      for (int i = 0; i < kOps; ++i) {
        // Mix find-or-create races with updates on shared instruments.
        metrics.counter("shared.counter").add(1);
        metrics.counter("per-thread." + std::to_string(t)).add(1);
        metrics.gauge("shared.gauge").add(1.0);
        metrics.histogram("shared.hist", {8.0, 64.0})
            .observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(metrics.counter_value("shared.counter"),
            static_cast<std::uint64_t>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(metrics.counter_value("per-thread." + std::to_string(t)),
              static_cast<std::uint64_t>(kOps));
  EXPECT_DOUBLE_EQ(metrics.gauge_value("shared.gauge"),
                   static_cast<double>(kThreads) * kOps);
  const Histogram* hist = metrics.find_histogram("shared.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace gr::obs

// End-to-end checks of the --trace-out/--metrics-out path: the metrics
// snapshot must agree with the RunReport, and attaching observability
// must not perturb results or simulated timings.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Extracts the number following `"name": ` (our own deterministic
/// writer; plain string search is reliable).
double metric(const std::string& json, const std::string& name) {
  const std::string tag = "\"" + name + "\": ";
  const std::size_t at = json.find(tag);
  EXPECT_NE(at, std::string::npos) << name;
  if (at == std::string::npos) return -1.0;
  return std::stod(json.substr(at + tag.size()));
}

core::EngineOptions streaming_options() {
  core::EngineOptions options;
  options.device.global_memory_bytes = 192 * 1024;
  return options;
}

TEST(Observability, MetricsCrossCheckAgainstRunReport) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  core::EngineOptions options = streaming_options();
  const std::string path = ::testing::TempDir() + "gr_obs_metrics.json";
  options.metrics_out = path;
  const auto result = algo::run_bfs(edges, 1, options);
  const core::RunReport& report = result.report;
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());

  EXPECT_EQ(metric(json, "device.bytes_h2d"),
            static_cast<double>(report.bytes_h2d));
  EXPECT_EQ(metric(json, "device.bytes_d2h"),
            static_cast<double>(report.bytes_d2h));
  EXPECT_EQ(metric(json, "device.kernels_launched"),
            static_cast<double>(report.kernels_launched));
  EXPECT_EQ(metric(json, "engine.iterations"),
            static_cast<double>(report.iterations));
  EXPECT_EQ(metric(json, "engine.partitions"),
            static_cast<double>(report.partitions));
  EXPECT_NEAR(metric(json, "device.h2d_busy_seconds"),
              report.h2d_busy_seconds, 1e-12);
  EXPECT_NEAR(metric(json, "device.d2h_busy_seconds"),
              report.d2h_busy_seconds, 1e-12);
  EXPECT_NEAR(metric(json, "engine.total_seconds"), report.total_seconds,
              1e-12);

  std::uint64_t streamed = 0;
  std::uint64_t culled = 0;
  for (const core::IterationStats& it : report.history) {
    streamed += it.shards_processed;
    culled += it.shards_skipped;
  }
  EXPECT_EQ(metric(json, "engine.transfers_streamed"),
            static_cast<double>(streamed));
  EXPECT_EQ(metric(json, "engine.transfers_culled"),
            static_cast<double>(culled));

  // The headline derived gauges exist and are sane.
  const double overlap = metric(json, "engine.overlap_ratio");
  EXPECT_GE(overlap, 0.0);
  EXPECT_LE(overlap, 1.0);
  const double occupancy = metric(json, "engine.slot_occupancy_max");
  EXPECT_GE(occupancy, 1.0);
}

TEST(Observability, MetricsByteIdenticalAcrossRuns) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  core::EngineOptions options = streaming_options();
  options.metrics_out = ::testing::TempDir() + "gr_obs_m_a.json";
  algo::run_bfs(edges, 1, options);
  const std::string first = slurp(options.metrics_out);
  options.metrics_out = ::testing::TempDir() + "gr_obs_m_b.json";
  options.threads = 3;
  algo::run_bfs(edges, 1, options);
  EXPECT_EQ(first, slurp(options.metrics_out));
  EXPECT_FALSE(first.empty());
}

TEST(Observability, AttachingObserversDoesNotPerturbTheRun) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  const auto plain = algo::run_pagerank(edges, 20, streaming_options());

  core::EngineOptions instrumented = streaming_options();
  instrumented.trace_out = ::testing::TempDir() + "gr_obs_perturb.json";
  instrumented.metrics_out = ::testing::TempDir() + "gr_obs_perturb_m.json";
  const auto traced = algo::run_pagerank(edges, 20, instrumented);

  // Bitwise-identical results and simulated timings: observability is
  // host-side only.
  ASSERT_EQ(plain.rank.size(), traced.rank.size());
  for (std::size_t v = 0; v < plain.rank.size(); ++v)
    ASSERT_EQ(plain.rank[v], traced.rank[v]) << "vertex " << v;
  EXPECT_EQ(plain.report.total_seconds, traced.report.total_seconds);
  EXPECT_EQ(plain.report.memcpy_seconds, traced.report.memcpy_seconds);
  EXPECT_EQ(plain.report.kernel_seconds, traced.report.kernel_seconds);
  EXPECT_EQ(plain.report.iterations, traced.report.iterations);
  EXPECT_EQ(plain.report.bytes_h2d, traced.report.bytes_h2d);
}

TEST(Observability, RunReportCarriesCopyEngineSplit) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  const auto result = algo::run_bfs(edges, 1, streaming_options());
  const core::RunReport& report = result.report;
  EXPECT_GT(report.h2d_busy_seconds, 0.0);
  EXPECT_GT(report.d2h_busy_seconds, 0.0);
  EXPECT_NEAR(report.h2d_busy_seconds + report.d2h_busy_seconds,
              report.memcpy_seconds, 1e-9);
}

}  // namespace
}  // namespace gr

#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine/transfer_policy.hpp"
#include "core/phase_plan.hpp"

namespace gr::obs {
namespace {

using vgpu::DeviceOpRecord;

core::Pass gather_pass() {
  core::Pass pass;
  pass.kernels = {core::PhaseKernel::kGatherMap,
                  core::PhaseKernel::kGatherReduce};
  return pass;
}

DeviceOpRecord op(DeviceOpRecord::Kind kind, std::uint64_t id, double start,
                  double end, std::uint64_t bytes = 0) {
  DeviceOpRecord record;
  record.kind = kind;
  record.op_id = id;
  record.start = start;
  record.end = end;
  record.bytes = bytes;
  return record;
}

// Feed a synthetic iteration through the observer seams: a copy on
// [0, 10] and a kernel on [5, 15] overlap for 5 simulated seconds.
TEST(ProfilingObserver, ComputesOverlapFromSyntheticRecords) {
  ProfilingObserver profiler;
  profiler.on_run_begin(2, 1, false);
  profiler.on_iteration_begin(0, 100);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);
  profiler.on_shard_begin(pass, 0);
  // Ops are tagged at enqueue time (driver side), complete later.
  const auto copy = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 10.0, 4096);
  const auto kernel = op(DeviceOpRecord::Kind::kKernel, 2, 5.0, 15.0);
  profiler.on_op_enqueued(copy);
  profiler.on_op_enqueued(kernel);
  profiler.on_shard_enqueued(pass, 0, {});
  profiler.on_op_completed(copy);
  profiler.on_op_completed(kernel);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  stats.iteration = 0;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  ASSERT_EQ(profiler.iterations().size(), 1u);
  const IterationProfile& it = profiler.iterations()[0];
  EXPECT_DOUBLE_EQ(it.copy_busy, 10.0);
  EXPECT_DOUBLE_EQ(it.kernel_busy, 10.0);
  EXPECT_DOUBLE_EQ(it.overlap_seconds, 5.0);
  EXPECT_DOUBLE_EQ(it.overlap_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(profiler.overlap_ratio(), 0.5);

  // Phase attribution lands on the gather label, tagged at enqueue.
  const auto& phases = profiler.phases();
  ASSERT_TRUE(phases.count("gather"));
  EXPECT_DOUBLE_EQ(phases.at("gather").copy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(phases.at("gather").kernel_seconds, 10.0);
  EXPECT_EQ(phases.at("gather").bytes_h2d, 4096u);
  EXPECT_EQ(phases.at("gather").shard_visits, 1u);

  // Shard attribution survives the visit closing before completion.
  ASSERT_TRUE(profiler.shards().count(0));
  EXPECT_EQ(profiler.shards().at(0).ops, 2u);
  EXPECT_EQ(profiler.shards().at(0).bytes, 4096u);
}

// Union-of-intervals: two abutting copies and a disjoint third must not
// double-count, and zero overlap yields ratio 0.
TEST(ProfilingObserver, BusyTimeIsUnionOfIntervals) {
  ProfilingObserver profiler;
  profiler.on_run_begin(1, 1, false);
  profiler.on_iteration_begin(0, 1);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);
  const auto a = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 4.0, 1);
  const auto b = op(DeviceOpRecord::Kind::kD2H, 2, 2.0, 6.0, 1);
  const auto c = op(DeviceOpRecord::Kind::kH2D, 3, 10.0, 12.0, 1);
  const auto k = op(DeviceOpRecord::Kind::kKernel, 4, 20.0, 21.0);
  for (const auto& record : {a, b, c, k}) profiler.on_op_enqueued(record);
  for (const auto& record : {a, b, c, k}) profiler.on_op_completed(record);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  const IterationProfile& it = profiler.iterations()[0];
  EXPECT_DOUBLE_EQ(it.copy_busy, 8.0);  // [0,6] u [10,12]
  EXPECT_DOUBLE_EQ(it.kernel_busy, 1.0);
  EXPECT_DOUBLE_EQ(it.overlap_seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.overlap_ratio(), 0.0);
}

// Golden output for the flame view: bars scale against the busiest
// shard, rows sort busy-descending, the strategy-mix labels carry the
// hybrid transfer layer's per-strategy visit counts, and max_rows
// truncation names what it dropped.
TEST(ProfilingObserver, ShardFlameGoldenOutput) {
  ProfilingObserver profiler;
  profiler.on_run_begin(3, 1, false);
  profiler.on_iteration_begin(0, 10);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);

  const auto decision = [](std::uint32_t shard,
                           core::TransferStrategy strategy,
                           std::uint64_t raw, std::uint64_t link) {
    core::TransferDecision d;
    d.shard = shard;
    d.strategy = strategy;
    d.raw_bytes = raw;
    d.link_bytes = link;
    return d;
  };

  // Shard 0: 2.0 busy seconds, 2 explicit + 1 pinned, 1.5 KB on the link.
  profiler.on_shard_begin(pass, 0);
  const auto k0 = op(DeviceOpRecord::Kind::kKernel, 1, 0.0, 2.0);
  profiler.on_op_enqueued(k0);
  profiler.on_shard_transfer(
      pass, decision(0, core::TransferStrategy::kExplicit, 600, 600));
  profiler.on_shard_transfer(
      pass, decision(0, core::TransferStrategy::kExplicit, 600, 600));
  profiler.on_shard_transfer(
      pass, decision(0, core::TransferStrategy::kPinned, 300, 300));
  // Shard 1: 1.0 busy seconds, one cache-served visit (skipped visits
  // charge their avoided raw bytes).
  profiler.on_shard_begin(pass, 1);
  const auto c1 = op(DeviceOpRecord::Kind::kH2D, 2, 2.0, 3.0, 64);
  profiler.on_op_enqueued(c1);
  profiler.on_shard_transfer(
      pass, decision(1, core::TransferStrategy::kSkipped, 500, 0));
  // Shard 12 (two digits exercises the column alignment): 0.5 busy
  // seconds, compressed delivery.
  profiler.on_shard_begin(pass, 12);
  const auto k12 = op(DeviceOpRecord::Kind::kKernel, 3, 3.0, 3.5);
  profiler.on_op_enqueued(k12);
  profiler.on_shard_transfer(
      pass,
      decision(12, core::TransferStrategy::kCompressed, 900000, 700000));
  profiler.on_shard_transfer(
      pass,
      decision(12, core::TransferStrategy::kCompressed, 900000, 650000));
  profiler.on_shard_transfer(
      pass,
      decision(12, core::TransferStrategy::kCompressed, 900000, 650000));

  for (const auto& record : {k0, c1, k12}) profiler.on_op_completed(record);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  std::ostringstream full;
  profiler.print_shard_flame(full);
  EXPECT_EQ(full.str(),
            "Shard transfer flame (bar = simulated busy seconds)\n"
            "  shard 0  |################################| 2.00s, "
            "1.50KB link, explicit×2 pinned×1\n"
            "  shard 1  |################                | 1.00s, "
            "500B link, skipped×1\n"
            "  shard 12 |########                        | 500.00ms, "
            "2.00MB link, compressed×3\n");

  std::ostringstream truncated;
  profiler.print_shard_flame(truncated, 2);
  EXPECT_EQ(truncated.str(),
            "Shard transfer flame (bar = simulated busy seconds)\n"
            "  shard 0  |################################| 2.00s, "
            "1.50KB link, explicit×2 pinned×1\n"
            "  shard 1  |################                | 1.00s, "
            "500B link, skipped×1\n"
            "  (+1 more shards)\n");
}

// Shards without a transfer decision stay out of the flame entirely
// (classic fully-resident runs print nothing).
TEST(ProfilingObserver, ShardFlameSilentWithoutTransferDecisions) {
  ProfilingObserver profiler;
  profiler.on_run_begin(1, 1, false);
  profiler.on_iteration_begin(0, 1);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);
  profiler.on_shard_begin(pass, 0);
  const auto k = op(DeviceOpRecord::Kind::kKernel, 1, 0.0, 1.0);
  profiler.on_op_enqueued(k);
  profiler.on_op_completed(k);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  std::ostringstream os;
  profiler.print_shard_flame(os);
  EXPECT_EQ(os.str(), "");
}

TEST(ProfilingObserver, SprayUtilizationCountsActiveStreams) {
  ProfilingObserver profiler;
  profiler.set_spray_streams({5, 6, 7, 8});
  profiler.on_run_begin(1, 1, false);
  profiler.on_iteration_begin(0, 1);
  auto used = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 1.0, 1);
  used.stream = 5;
  auto also_used = op(DeviceOpRecord::Kind::kH2D, 2, 1.0, 2.0, 1);
  also_used.stream = 6;
  for (const auto& record : {used, also_used}) {
    profiler.on_op_enqueued(record);
    profiler.on_op_completed(record);
  }
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);
  EXPECT_DOUBLE_EQ(profiler.spray_utilization(), 0.5);  // 2 of 4
}

}  // namespace
}  // namespace gr::obs

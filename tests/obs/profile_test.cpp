#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include "core/phase_plan.hpp"

namespace gr::obs {
namespace {

using vgpu::DeviceOpRecord;

core::Pass gather_pass() {
  core::Pass pass;
  pass.kernels = {core::PhaseKernel::kGatherMap,
                  core::PhaseKernel::kGatherReduce};
  return pass;
}

DeviceOpRecord op(DeviceOpRecord::Kind kind, std::uint64_t id, double start,
                  double end, std::uint64_t bytes = 0) {
  DeviceOpRecord record;
  record.kind = kind;
  record.op_id = id;
  record.start = start;
  record.end = end;
  record.bytes = bytes;
  return record;
}

// Feed a synthetic iteration through the observer seams: a copy on
// [0, 10] and a kernel on [5, 15] overlap for 5 simulated seconds.
TEST(ProfilingObserver, ComputesOverlapFromSyntheticRecords) {
  ProfilingObserver profiler;
  profiler.on_run_begin(2, 1, false);
  profiler.on_iteration_begin(0, 100);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);
  profiler.on_shard_begin(pass, 0);
  // Ops are tagged at enqueue time (driver side), complete later.
  const auto copy = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 10.0, 4096);
  const auto kernel = op(DeviceOpRecord::Kind::kKernel, 2, 5.0, 15.0);
  profiler.on_op_enqueued(copy);
  profiler.on_op_enqueued(kernel);
  profiler.on_shard_enqueued(pass, 0, {});
  profiler.on_op_completed(copy);
  profiler.on_op_completed(kernel);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  stats.iteration = 0;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  ASSERT_EQ(profiler.iterations().size(), 1u);
  const IterationProfile& it = profiler.iterations()[0];
  EXPECT_DOUBLE_EQ(it.copy_busy, 10.0);
  EXPECT_DOUBLE_EQ(it.kernel_busy, 10.0);
  EXPECT_DOUBLE_EQ(it.overlap_seconds, 5.0);
  EXPECT_DOUBLE_EQ(it.overlap_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(profiler.overlap_ratio(), 0.5);

  // Phase attribution lands on the gather label, tagged at enqueue.
  const auto& phases = profiler.phases();
  ASSERT_TRUE(phases.count("gather"));
  EXPECT_DOUBLE_EQ(phases.at("gather").copy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(phases.at("gather").kernel_seconds, 10.0);
  EXPECT_EQ(phases.at("gather").bytes_h2d, 4096u);
  EXPECT_EQ(phases.at("gather").shard_visits, 1u);

  // Shard attribution survives the visit closing before completion.
  ASSERT_TRUE(profiler.shards().count(0));
  EXPECT_EQ(profiler.shards().at(0).ops, 2u);
  EXPECT_EQ(profiler.shards().at(0).bytes, 4096u);
}

// Union-of-intervals: two abutting copies and a disjoint third must not
// double-count, and zero overlap yields ratio 0.
TEST(ProfilingObserver, BusyTimeIsUnionOfIntervals) {
  ProfilingObserver profiler;
  profiler.on_run_begin(1, 1, false);
  profiler.on_iteration_begin(0, 1);
  const core::Pass pass = gather_pass();
  profiler.on_pass_begin(pass, 0);
  const auto a = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 4.0, 1);
  const auto b = op(DeviceOpRecord::Kind::kD2H, 2, 2.0, 6.0, 1);
  const auto c = op(DeviceOpRecord::Kind::kH2D, 3, 10.0, 12.0, 1);
  const auto k = op(DeviceOpRecord::Kind::kKernel, 4, 20.0, 21.0);
  for (const auto& record : {a, b, c, k}) profiler.on_op_enqueued(record);
  for (const auto& record : {a, b, c, k}) profiler.on_op_completed(record);
  profiler.on_pass_end(pass, 0);
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);

  const IterationProfile& it = profiler.iterations()[0];
  EXPECT_DOUBLE_EQ(it.copy_busy, 8.0);  // [0,6] u [10,12]
  EXPECT_DOUBLE_EQ(it.kernel_busy, 1.0);
  EXPECT_DOUBLE_EQ(it.overlap_seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.overlap_ratio(), 0.0);
}

TEST(ProfilingObserver, SprayUtilizationCountsActiveStreams) {
  ProfilingObserver profiler;
  profiler.set_spray_streams({5, 6, 7, 8});
  profiler.on_run_begin(1, 1, false);
  profiler.on_iteration_begin(0, 1);
  auto used = op(DeviceOpRecord::Kind::kH2D, 1, 0.0, 1.0, 1);
  used.stream = 5;
  auto also_used = op(DeviceOpRecord::Kind::kH2D, 2, 1.0, 2.0, 1);
  also_used.stream = 6;
  for (const auto& record : {used, also_used}) {
    profiler.on_op_enqueued(record);
    profiler.on_op_completed(record);
  }
  core::IterationStats stats;
  profiler.on_iteration_end(stats);
  core::RunReport report;
  profiler.on_run_end(report);
  EXPECT_DOUBLE_EQ(profiler.spray_utilization(), 0.5);  // 2 of 4
}

}  // namespace
}  // namespace gr::obs

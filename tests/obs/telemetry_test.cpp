// Serving telemetry (obs/telemetry.hpp): NDJSON sink format and
// determinism, the baseline phase renderer, and the scheduler-level
// attribution invariant — per-tenant DeviceStats deltas must partition
// the device-wide totals exactly.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/algorithms/registry.hpp"
#include "core/engine/scheduler.hpp"
#include "graph/generators.hpp"

namespace gr::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetrySink, WritesHeaderAndFixedFormatEvents) {
  const std::string path = ::testing::TempDir() + "sink_format.ndjson";
  TelemetrySink sink;
  EXPECT_FALSE(sink.enabled());
  sink.event("dropped", 1.0);  // closed sink: no-op
  EXPECT_EQ(sink.records(), 0u);

  std::string header_fields;
  TelemetrySink::field(header_fields, "bench", "unit \"quoted\"");
  TelemetrySink::field_u64(header_fields, "threads", 4);
  ASSERT_TRUE(sink.open(path, header_fields));
  EXPECT_TRUE(sink.enabled());

  std::string f;
  TelemetrySink::field_u64(f, "job", 7);
  TelemetrySink::field_f(f, "ratio", 0.25);
  TelemetrySink::field_t(f, "queue_seconds", 0.5);
  sink.event("job_admit", 1.25, f);
  sink.event("drain", 2.0);
  EXPECT_EQ(sink.records(), 3u);
  sink.close();
  EXPECT_FALSE(sink.enabled());

  // Exact bytes: timestamps are fixed %.9f so streams diff cleanly.
  EXPECT_EQ(slurp(path),
            "{\"event\":\"header\",\"schema\":1,"
            "\"clock\":\"simulated-seconds\","
            "\"bench\":\"unit \\\"quoted\\\"\",\"threads\":4}\n"
            "{\"event\":\"job_admit\",\"t\":1.250000000,\"job\":7,"
            "\"ratio\":0.25,\"queue_seconds\":0.500000000}\n"
            "{\"event\":\"drain\",\"t\":2.000000000}\n");
}

TEST(TelemetrySink, UnopenablePathDisablesTheSink) {
  TelemetrySink sink;
  EXPECT_FALSE(sink.open(::testing::TempDir() +
                         "no_such_dir/sink.ndjson"));
  EXPECT_FALSE(sink.enabled());
  sink.event("job_start", 0.0);
  EXPECT_EQ(sink.records(), 0u);
}

TEST(BaselinePhaseObserver, RendersPhasesIntoTraceAndMetrics) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_out = dir + "baseline_phase.trace.json";
  const std::string metrics_out = dir + "baseline_phase.metrics.json";
  BaselinePhaseObserver::Config config;
  config.trace_out = trace_out;
  config.metrics_out = metrics_out;
  config.track_prefix = "graphchi/";
  config.provenance = {{"system", "graphchi"}};
  BaselinePhaseObserver observer(std::move(config));

  observer.on_run_begin("graphchi", 0.0);
  observer.on_phase("load", 0, 0.0, 1.0);
  observer.on_phase("compute", 0, 1.0, 3.0);
  observer.on_bytes("read", 4096);
  observer.on_iteration_end(0, 3.0, 17);
  baselines::BaselineReport report;
  report.seconds = 3.5;
  report.iterations = 1;
  report.converged = true;
  report.edges_streamed = 123;
  observer.on_run_end(3.5, report);

  // run span (b/e) + 2 phases (b/e each) + iteration instant = 7.
  EXPECT_EQ(observer.trace().event_count(), 7u);
  EXPECT_EQ(observer.metrics().counter_value("baseline.phase.load_spans"),
            1u);
  EXPECT_EQ(
      observer.metrics().counter_value("baseline.phase.compute_spans"),
      1u);
  EXPECT_DOUBLE_EQ(
      observer.metrics().gauge_value("baseline.phase.compute_seconds"),
      2.0);
  EXPECT_EQ(observer.metrics().counter_value("baseline.bytes_read"),
            4096u);
  EXPECT_EQ(observer.metrics().counter_value("baseline.iterations"), 1u);
  EXPECT_EQ(observer.metrics().counter_value("baseline.updates"), 17u);
  EXPECT_DOUBLE_EQ(observer.metrics().gauge_value("baseline.converged"),
                   1.0);
  EXPECT_EQ(
      observer.metrics().counter_value("baseline.edges_streamed"), 123u);

  observer.finalize();
  const std::string trace_json = slurp(trace_out);
  EXPECT_NE(trace_json.find("graphchi/"), std::string::npos);
  EXPECT_NE(trace_json.find("\"compute\""), std::string::npos);
  const std::string metrics_json = slurp(metrics_out);
  EXPECT_NE(metrics_json.find("\"system\": \"graphchi\""),
            std::string::npos);
  EXPECT_NE(metrics_json.find("baseline.phase.load_seconds"),
            std::string::npos);
}

// End-to-end through the scheduler: serve a few queries with a
// telemetry file, then check (a) the attribution invariant the design
// promises — tenant deltas sum to the device totals bit-for-bit on the
// integer fields — and (b) the stream replays byte-identically.
TEST(SchedulerTelemetry, TenantAttributionPartitionsDeviceTotals) {
  algo::register_builtin_programs();
  const auto edges = graph::rmat(9, 4000, 5);
  const std::string path =
      ::testing::TempDir() + "sched_telemetry.ndjson";

  const auto make_options = [](const std::string& telemetry_out) {
    core::EngineOptions options;
    options.device.global_memory_bytes = 192 * 1024;  // force streaming
    options.sched_max_concurrent = 2;
    options.sched_fusion = false;
    options.telemetry_out = telemetry_out;
    return options;
  };
  const auto submit_all = [](core::JobScheduler& sched) {
    for (graph::VertexId source : {2u, 11u, 23u}) {
      core::JobRequest request;
      request.program = "bfs";
      request.spec.source = source;
      sched.submit(request);
    }
    sched.drain();
  };

  core::JobScheduler sched(edges, make_options(path));
  submit_all(sched);
  sched.verify_attribution();  // throws on drift

  const std::vector<TenantUsage>& tenants = sched.tenant_usage();
  ASSERT_EQ(tenants.size(), 3u);
  vgpu::DeviceStats attributed;
  double lane_seconds = 0.0;
  for (const TenantUsage& usage : tenants) {
    EXPECT_GT(usage.steps, 0u);
    EXPECT_GE(usage.finish_seconds, usage.admit_seconds);
    attributed.accumulate(usage.device);
    lane_seconds += usage.cache_lane_seconds;
  }
  const vgpu::DeviceStats totals = sched.device_totals();
  EXPECT_EQ(attributed.bytes_h2d, totals.bytes_h2d);
  EXPECT_EQ(attributed.bytes_d2h, totals.bytes_d2h);
  EXPECT_EQ(attributed.h2d_ops, totals.h2d_ops);
  EXPECT_EQ(attributed.d2h_ops, totals.d2h_ops);
  EXPECT_EQ(attributed.kernels_launched, totals.kernels_launched);
  EXPECT_NEAR(attributed.kernel_busy_seconds, totals.kernel_busy_seconds,
              1e-9 * totals.kernel_busy_seconds);
  EXPECT_GE(lane_seconds, 0.0);

  const Histogram* latency =
      sched.metrics().find_histogram("sched.job_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 3u);
  EXPECT_GT(latency->percentile(0.5), 0.0);

  // The stream exists, starts with the header, and ends with drain.
  const std::string stream = slurp(path);
  EXPECT_EQ(stream.rfind("{\"event\":\"header\"", 0), 0u);
  EXPECT_NE(stream.find("\"event\":\"job_admit\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"job_finish\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"transfer\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"drain\""), std::string::npos);
  // The drain record's attribution rollups carry the same partition the
  // invariant check above verified in-process.
  EXPECT_NE(stream.find(",\"attrib_bytes_h2d\":" +
                        std::to_string(totals.bytes_h2d)),
            std::string::npos);
  EXPECT_NE(stream.find(",\"device_bytes_h2d\":" +
                        std::to_string(totals.bytes_h2d)),
            std::string::npos);

  // Replaying the identical workload reproduces the stream byte for
  // byte (the simulated clock, not wall time, stamps every record).
  const std::string replay_path =
      ::testing::TempDir() + "sched_telemetry_replay.ndjson";
  core::JobScheduler replay(edges, make_options(replay_path));
  submit_all(replay);
  EXPECT_EQ(slurp(replay_path), stream);

  // The drain-time report renders one row per tenant plus sum/dev rows.
  std::ostringstream report;
  print_tenant_report(report, tenants, totals);
  EXPECT_NE(report.str().find("sum"), std::string::npos);
  EXPECT_NE(report.str().find("(device-wide totals)"),
            std::string::npos);
}

}  // namespace
}  // namespace gr::obs

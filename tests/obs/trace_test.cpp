#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/algorithms/algorithms.hpp"
#include "graph/generators.hpp"

namespace gr::obs {
namespace {

// --- minimal JSON validity checker ----------------------------------
// Recursive-descent validator for the subset the exporter emits (the CI
// job re-validates with Python's json module; this keeps the invariant
// test-enforced too).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- line-oriented event inspection ----------------------------------
// The exporter writes one event object per line; pull fields by key with
// plain string search (deterministic output makes this safe).

struct EventLine {
  char ph = '?';
  int tid = -1;
  double ts = -1.0;
  std::string name;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t at = line.find(tag);
  if (at == std::string::npos) return {};
  std::size_t begin = at + tag.size();
  std::size_t end = begin;
  if (line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  return line.substr(begin, end - begin);
}

std::vector<EventLine> parse_events(const std::string& json) {
  std::vector<EventLine> out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    const std::string ph = field(line, "ph");
    if (ph.empty()) continue;
    EventLine ev;
    ev.ph = ph[0];
    ev.name = field(line, "name");
    const std::string tid = field(line, "tid");
    if (!tid.empty()) ev.tid = std::stoi(tid);
    const std::string ts = field(line, "ts");
    if (!ts.empty()) ev.ts = std::stod(ts);
    out.push_back(std::move(ev));
  }
  return out;
}

std::string run_traced(core::EngineOptions options, const std::string& path) {
  const graph::EdgeList edges = graph::rmat(9, 3000, 17);
  options.device.global_memory_bytes = 192 * 1024;  // force streaming
  options.trace_out = path;
  algo::run_bfs(edges, 1, options);
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST(TraceRecorder, EmitsValidJson) {
  const std::string json =
      run_traced({}, ::testing::TempDir() + "gr_trace_valid.json");
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(TraceRecorder, HasExpectedTracksAndNestedSpans) {
  const std::string json =
      run_traced({}, ::testing::TempDir() + "gr_trace_tracks.json");

  for (const char* track : {"engine driver", "copy engine H2D",
                            "copy engine D2H", "SMX compute", "slot 0",
                            "spray 0", "spray 7"})
    EXPECT_NE(json.find(std::string("\"name\": \"") + track + "\""),
              std::string::npos)
        << track;

  // B/E duration events nest correctly per track: every E closes the
  // most recent same-name B, and nothing stays open at the end.
  std::map<int, std::vector<std::string>> stacks;
  bool saw_iteration_inside_run = false;
  for (const EventLine& ev : parse_events(json)) {
    if (ev.ph == 'B') {
      auto& stack = stacks[ev.tid];
      if (stack.size() >= 2 && stack[0] == "run" &&
          stack[1].rfind("iteration", 0) == 0)
        saw_iteration_inside_run = true;  // pass span nested two deep
      stack.push_back(ev.name);
    } else if (ev.ph == 'E') {
      auto& stack = stacks[ev.tid];
      ASSERT_FALSE(stack.empty()) << "E without B: " << ev.name;
      EXPECT_EQ(stack.back(), ev.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  EXPECT_TRUE(saw_iteration_inside_run);
}

TEST(TraceRecorder, TimestampsMonotonicPerSynchronousTrack) {
  const std::string json =
      run_traced({}, ::testing::TempDir() + "gr_trace_mono.json");
  // Driver B/E/i events and per-engine X events are serialized views of
  // FIFO queues: array order must be non-decreasing in ts per track.
  std::map<int, double> last_sync;  // tid -> last B/E/i ts
  std::map<int, double> last_x;     // tid -> last X start ts
  int checked = 0;
  for (const EventLine& ev : parse_events(json)) {
    if (ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i') {
      auto [it, fresh] = last_sync.try_emplace(ev.tid, ev.ts);
      if (!fresh) {
        EXPECT_GE(ev.ts, it->second) << ev.name;
      }
      it->second = ev.ts;
      ++checked;
    } else if (ev.ph == 'X') {
      auto [it, fresh] = last_x.try_emplace(ev.tid, ev.ts);
      if (!fresh) {
        EXPECT_GE(ev.ts, it->second) << ev.name;
      }
      it->second = ev.ts;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(TraceRecorder, ByteIdenticalAcrossRunsAndThreadCounts) {
  const std::string base =
      run_traced({}, ::testing::TempDir() + "gr_trace_a.json");
  const std::string repeat =
      run_traced({}, ::testing::TempDir() + "gr_trace_b.json");
  EXPECT_EQ(base, repeat);

  core::EngineOptions serial;
  serial.threads = 1;
  core::EngineOptions wide;
  wide.threads = 4;
  EXPECT_EQ(run_traced(serial, ::testing::TempDir() + "gr_trace_t1.json"),
            run_traced(wide, ::testing::TempDir() + "gr_trace_t4.json"));
  EXPECT_EQ(base,
            run_traced(serial, ::testing::TempDir() + "gr_trace_t1b.json"));
}

TEST(TraceRecorder, PassLabelUsesPaperNames) {
  core::Pass gather;
  gather.kernels = {core::PhaseKernel::kGatherMap,
                    core::PhaseKernel::kGatherReduce};
  EXPECT_EQ(TraceRecorder::pass_label(gather), "gather");
  core::Pass fused;
  fused.kernels = {core::PhaseKernel::kApply,
                   core::PhaseKernel::kFrontierActivate};
  EXPECT_EQ(TraceRecorder::pass_label(fused), "apply+activate");
}

}  // namespace
}  // namespace gr::obs

#include "sim/engines.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gr::sim {
namespace {

TEST(FifoEngine, BackToBackRequestsSerialize) {
  FifoEngine engine;
  const auto w1 = engine.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(w1.start, 0.0);
  EXPECT_DOUBLE_EQ(w1.end, 2.0);
  const auto w2 = engine.acquire(0.5, 1.0);  // ready before engine is free
  EXPECT_DOUBLE_EQ(w2.start, 2.0);
  EXPECT_DOUBLE_EQ(w2.end, 3.0);
}

TEST(FifoEngine, IdleGapWhenRequestArrivesLate) {
  FifoEngine engine;
  engine.acquire(0.0, 1.0);
  const auto w = engine.acquire(5.0, 1.0);
  EXPECT_DOUBLE_EQ(w.start, 5.0);
  EXPECT_DOUBLE_EQ(w.end, 6.0);
  EXPECT_DOUBLE_EQ(engine.busy_time(), 2.0);
}

TEST(SharedEngine, SingleTaskRunsAtItsCap) {
  EventQueue q;
  SharedEngine engine(q);
  double done_at = -1.0;
  engine.add_task(1.0, 0.5, [&](auto) { done_at = q.now(); });
  q.run();
  // work 1.0 at rate 0.5 -> finishes at t=2.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(SharedEngine, IndependentSmallTasksRunConcurrently) {
  // Two tasks each capped at 0.5 fit side by side: both complete at t=2,
  // not t=4 — the paper's compute-compute scheme.
  EventQueue q;
  SharedEngine engine(q);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i)
    engine.add_task(1.0, 0.5, [&](auto) { done.push_back(q.now()); });
  q.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(SharedEngine, OversubscriptionScalesRatesProportionally) {
  // Four full-rate tasks of 1s each share the device: all end at t=4.
  EventQueue q;
  SharedEngine engine(q);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    engine.add_task(1.0, 1.0, [&](auto) { done.push_back(q.now()); });
  q.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 4.0, 1e-9);
}

TEST(SharedEngine, LateArrivalSlowsExistingTask) {
  // Task A (2s of work, full rate) runs alone for 1s, then task B
  // (1s work, full rate) joins. They share: A finishes its remaining 1s
  // of work at rate 1/2 -> t = 1 + 2 = 3. B also needs 1s at 1/2, but
  // once A finishes at t=3... A remaining at t=1 is 1.0; B remaining 1.0;
  // equal shares -> both hit zero at t=3.
  EventQueue q;
  SharedEngine engine(q);
  double a_done = -1.0;
  double b_done = -1.0;
  engine.add_task(2.0, 1.0, [&](auto) { a_done = q.now(); });
  q.schedule_at(1.0, [&] {
    engine.add_task(1.0, 1.0, [&](auto) { b_done = q.now(); });
  });
  q.run();
  EXPECT_NEAR(a_done, 3.0, 1e-9);
  EXPECT_NEAR(b_done, 3.0, 1e-9);
}

TEST(SharedEngine, DepartureSpeedsUpSurvivors) {
  // A: 1s work; B: 3s work, both full-rate. Shared until A ends at t=2;
  // B then has 2s left at full rate -> ends at t=4.
  EventQueue q;
  SharedEngine engine(q);
  double a_done = -1.0;
  double b_done = -1.0;
  engine.add_task(1.0, 1.0, [&](auto) { a_done = q.now(); });
  engine.add_task(3.0, 1.0, [&](auto) { b_done = q.now(); });
  q.run();
  EXPECT_NEAR(a_done, 2.0, 1e-9);
  EXPECT_NEAR(b_done, 4.0, 1e-9);
}

TEST(SharedEngine, ZeroWorkCompletesImmediately) {
  EventQueue q;
  SharedEngine engine(q);
  double done_at = -1.0;
  engine.add_task(0.0, 1.0, [&](auto) { done_at = q.now(); });
  q.run();
  EXPECT_NEAR(done_at, 0.0, 1e-12);
}

TEST(SharedEngine, BusyTimeIntegratesUtilization) {
  EventQueue q;
  SharedEngine engine(q);
  engine.add_task(1.0, 0.5, [](auto) {});  // 2s at utilization 0.5
  q.run();
  EXPECT_NEAR(engine.busy_time(), 1.0, 1e-9);
}

TEST(SharedEngine, CompletionMayAddNewTask) {
  EventQueue q;
  SharedEngine engine(q);
  double second_done = -1.0;
  engine.add_task(1.0, 1.0, [&](auto) {
    engine.add_task(1.0, 1.0, [&](auto) { second_done = q.now(); });
  });
  q.run();
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

}  // namespace
}  // namespace gr::sim

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gr::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_DOUBLE_EQ(q.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(2.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), util::CheckError);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(5.0, [&] { order.push_back(5); });
  q.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(order.back(), 5);
}

TEST(EventQueue, AdvanceToMovesClockWithoutEvents) {
  EventQueue q;
  q.advance_to(4.0);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
  EXPECT_THROW(q.advance_to(3.0), util::CheckError);
}

TEST(EventQueue, EmptyAndPendingReflectState) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule_at(1.0, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace gr::sim

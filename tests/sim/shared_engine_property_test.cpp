// Property sweeps over the processor-sharing compute engine: work
// conservation and fairness must hold for arbitrary task mixes, not just
// the hand-picked scenarios in engines_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engines.hpp"
#include "util/rng.hpp"

namespace gr::sim {
namespace {

struct Mix {
  std::uint64_t seed;
  int tasks;
};

class SharedEngineSweep : public ::testing::TestWithParam<Mix> {};

TEST_P(SharedEngineSweep, ConservesWorkAndFinishesEverything) {
  util::Rng rng(GetParam().seed);
  EventQueue queue;
  SharedEngine engine(queue);
  double total_work = 0.0;
  int completed = 0;
  std::vector<double> finish_times;
  for (int i = 0; i < GetParam().tasks; ++i) {
    const double work = rng.uniform(0.01, 2.0);
    const double cap = rng.uniform(0.05, 1.0);
    total_work += work;
    // Stagger arrivals.
    queue.schedule_at(rng.uniform(0.0, 1.0), [&, work, cap] {
      engine.add_task(work, cap, [&](auto) {
        ++completed;
        finish_times.push_back(queue.now());
      });
    });
  }
  const double end = queue.run();
  EXPECT_EQ(completed, GetParam().tasks);
  EXPECT_EQ(engine.active_tasks(), 0u);
  // Work conservation: the device-rate busy integral equals the total
  // work served (no work is lost or duplicated).
  EXPECT_NEAR(engine.busy_time(), total_work, 1e-6 * total_work + 1e-9);
  // Nothing finishes after the simulation end.
  for (double t : finish_times) EXPECT_LE(t, end + 1e-12);
}

TEST_P(SharedEngineSweep, MakespanBounds) {
  // The makespan is at least total_work (device rate 1) and at most
  // sum(work_i / cap_i) + last arrival (full serialization bound).
  util::Rng rng(GetParam().seed ^ 0x5a5a);
  EventQueue queue;
  SharedEngine engine(queue);
  double total_work = 0.0;
  double serial_bound = 0.0;
  for (int i = 0; i < GetParam().tasks; ++i) {
    const double work = rng.uniform(0.05, 1.0);
    const double cap = rng.uniform(0.1, 1.0);
    total_work += work;
    serial_bound += work / cap;
    engine.add_task(work, cap, [](auto) {});
  }
  const double end = queue.run();
  EXPECT_GE(end, total_work - 1e-9);
  EXPECT_LE(end, serial_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SharedEngineSweep,
    ::testing::Values(Mix{1, 1}, Mix{2, 3}, Mix{3, 8}, Mix{4, 20},
                      Mix{5, 50}, Mix{6, 100}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.tasks);
    });

TEST(SharedEngineProperty, EqualTasksFinishTogetherRegardlessOfCount) {
  for (int count : {2, 5, 16, 33}) {
    EventQueue queue;
    SharedEngine engine(queue);
    std::vector<double> done;
    for (int i = 0; i < count; ++i)
      engine.add_task(1.0, 1.0, [&](auto) { done.push_back(queue.now()); });
    queue.run();
    ASSERT_EQ(done.size(), static_cast<std::size_t>(count));
    for (double t : done)
      EXPECT_NEAR(t, static_cast<double>(count), 1e-6) << count;
  }
}

TEST(SharedEngineProperty, CapsBelowOneLeaveDeviceUnderutilized) {
  // Two tasks capped at 0.25: aggregate utilization 0.5, so busy_time
  // integrates to total work while wall time is twice that.
  EventQueue queue;
  SharedEngine engine(queue);
  engine.add_task(1.0, 0.25, [](auto) {});
  engine.add_task(1.0, 0.25, [](auto) {});
  const double end = queue.run();
  EXPECT_NEAR(end, 4.0, 1e-9);
  EXPECT_NEAR(engine.busy_time(), 2.0, 1e-9);
}

}  // namespace
}  // namespace gr::sim

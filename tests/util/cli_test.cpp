#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace gr::util {
namespace {

TEST(Cli, ParsesAllKindsWithEquals) {
  std::string s = "a";
  std::int64_t i = 1;
  double d = 0.5;
  bool b = false;
  Cli cli("prog", "test");
  cli.flag("str", &s, "").flag("int", &i, "").flag("dbl", &d, "").flag(
      "flag", &b, "");
  const char* argv[] = {"prog", "--str=hello", "--int=42", "--dbl=2.25",
                        "--flag=true"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_TRUE(b);
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  std::int64_t i = 0;
  Cli cli("prog", "test");
  cli.flag("n", &i, "");
  const char* argv[] = {"prog", "--n", "7"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(i, 7);
}

TEST(Cli, BareBoolSetsTrueAndNoPrefixSetsFalse) {
  bool b = false;
  bool c = true;
  Cli cli("prog", "test");
  cli.flag("x", &b, "").flag("y", &c, "");
  const char* argv[] = {"prog", "--x", "--no-y"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_TRUE(b);
  EXPECT_FALSE(c);
}

TEST(Cli, CollectsPositionals) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"one", "two"}));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), CheckError);
}

TEST(Cli, MalformedIntThrows) {
  std::int64_t i = 0;
  Cli cli("prog", "test");
  cli.flag("n", &i, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(cli.parse(2, argv), CheckError);
}

TEST(Cli, MissingValueThrows) {
  std::int64_t i = 0;
  Cli cli("prog", "test");
  cli.flag("n", &i, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), CheckError);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  std::int64_t i = 9;
  Cli cli("prog", "does things");
  cli.flag("iterations", &i, "how many");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--iterations"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
}

}  // namespace
}  // namespace gr::util

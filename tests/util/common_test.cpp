#include "util/common.hpp"

#include <gtest/gtest.h>

namespace gr::util {
namespace {

TEST(Common, CheckPassesOnTrue) { EXPECT_NO_THROW(GR_CHECK(1 + 1 == 2)); }

TEST(Common, CheckThrowsOnFalse) {
  EXPECT_THROW(GR_CHECK(false), CheckError);
}

TEST(Common, CheckMsgIncludesMessageAndLocation) {
  try {
    GR_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Common, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
}

TEST(Common, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

}  // namespace
}  // namespace gr::util

#include "util/format.hpp"

#include <gtest/gtest.h>

namespace gr::util {
namespace {

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(7'900'000), "7.90MB");
  EXPECT_EQ(format_bytes(4'840'000'000ULL), "4.84GB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5us");
  EXPECT_EQ(format_seconds(0.215155), "215.16ms");
  EXPECT_EQ(format_seconds(4.0), "4.00s");
  EXPECT_EQ(format_seconds(83.0), "83.00s");
  EXPECT_EQ(format_seconds(125.0), "2m05s");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1'441'295), "1,441,295");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace gr::util

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gr::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixIsStateless) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace gr::util

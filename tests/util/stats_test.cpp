#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace gr::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, GeoMean) {
  const double xs[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geo_mean(xs), 4.0, 1e-12);
}

TEST(Stats, GeoMeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW(geo_mean(xs), CheckError);
}

TEST(Stats, StddevOfConstantIsZero) {
  const double xs[] = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, AccumulatorTracksMinMaxMean) {
  Accumulator acc;
  acc.add(3.0);
  acc.add(1.0);
  acc.add(8.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 8.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

}  // namespace
}  // namespace gr::util

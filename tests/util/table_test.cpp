#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/common.hpp"

namespace gr::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("demo");
  t.header({"graph", "ms"});
  t.add_row({"ak2010", "7.75"});
  t.add_row({"kron_g500-logn20", "119.8"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| graph"), std::string::npos);
  EXPECT_NE(out.find("kron_g500-logn20"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t;
  t.header({"name", "note"});
  t.add_row({"x", "hello, \"world\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,note\nx,\"hello, \"\"world\"\"\"\n");
}

TEST(Table, RowCountTracksRows) {
  Table t;
  t.header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace gr::util

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace gr::util {
namespace {

TEST(ThreadPool, RunBlocksExecutesEveryBlockOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.run_blocks(100, [&](std::size_t b) { counts[b]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RunBlocksWithZeroBlocksIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_blocks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;
  pool.run_blocks(5, [&](std::size_t b) { order.push_back(int(b)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, NestedRunBlocksFallsBackInline) {
  // A block body calling run_blocks on the same pool must not deadlock:
  // the nested call detects it is inside a batch and runs inline.
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  std::vector<std::atomic<int>> outer_counts(8);
  pool.run_blocks(8, [&](std::size_t b) {
    outer_counts[b]++;
    pool.run_blocks(5, [&](std::size_t) { inner_total++; });
  });
  for (const auto& c : outer_counts) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(inner_total.load(), 8 * 5);
}

TEST(ThreadPool, DoublyNestedStaysInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.run_blocks(2, [&](std::size_t) {
    pool.run_blocks(2, [&](std::size_t) {
      pool.run_blocks(2, [&](std::size_t) { total++; });
    });
  });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, SetSharedWorkersRebuildsThePool) {
  ThreadPool::set_shared_workers(3);
  EXPECT_EQ(ThreadPool::shared().worker_count(), 3u);
  const ThreadPool* before = &ThreadPool::shared();
  ThreadPool::set_shared_workers(3);  // same size: no rebuild
  EXPECT_EQ(&ThreadPool::shared(), before);
  ThreadPool::set_shared_workers(1);
  EXPECT_EQ(ThreadPool::shared().worker_count(), 1u);
  std::atomic<int> total{0};
  ThreadPool::shared().run_blocks(10, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 10);
  ThreadPool::set_shared_workers(2);  // leave a parallel pool for later tests
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> total{0};
    pool.run_blocks(17, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 17);
  }
}

TEST(ParallelFor, CoversFullRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 16, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset) {
  std::atomic<long> sum{0};
  parallel_for(100, 200, 8, [&](std::size_t i) { sum += long(i); });
  long expected = 0;
  for (std::size_t i = 100; i < 200; ++i) expected += long(i);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, 1, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(0, 4, 100, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelFor, NestedInsideSharedPoolBatchDoesNotDeadlock) {
  ThreadPool::set_shared_workers(3);
  std::vector<std::atomic<int>> hits(64 * 16);
  parallel_for(0, 64, 1, [&](std::size_t outer) {
    parallel_for(0, 16, 1,
                 [&](std::size_t inner) { hits[outer * 16 + inner]++; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, BlocksAreExactlyGrainSizedAndCoverTheRange) {
  ThreadPool::set_shared_workers(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallel_for_blocks(10, 107, 25, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(mu);
    blocks.emplace_back(lo, hi);
  });
  std::sort(blocks.begin(), blocks.end());
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {10, 35}, {35, 60}, {60, 85}, {85, 107}};
  EXPECT_EQ(blocks, expected);
}

TEST(ParallelForBlocks, SerialWhenRangeFitsOneGrain) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallel_for_blocks(3, 9, 100, [&](std::size_t lo, std::size_t hi) {
    blocks.emplace_back(lo, hi);
  });
  EXPECT_EQ(blocks,
            (std::vector<std::pair<std::size_t, std::size_t>>{{3, 9}}));
}

}  // namespace
}  // namespace gr::util

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gr::util {
namespace {

TEST(ThreadPool, RunBlocksExecutesEveryBlockOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.run_blocks(100, [&](std::size_t b) { counts[b]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RunBlocksWithZeroBlocksIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_blocks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;
  pool.run_blocks(5, [&](std::size_t b) { order.push_back(int(b)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> total{0};
    pool.run_blocks(17, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 17);
  }
}

TEST(ParallelFor, CoversFullRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 16, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset) {
  std::atomic<long> sum{0};
  parallel_for(100, 200, 8, [&](std::size_t i) { sum += long(i); });
  long expected = 0;
  for (std::size_t i = 100; i < 200; ++i) expected += long(i);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, 1, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(0, 4, 100, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace gr::util

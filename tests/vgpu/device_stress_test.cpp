// Randomized stress over the virtual device: arbitrary mixes of streams,
// copies, kernels, events and host tasks must always drain, keep the
// clock monotone, execute every functional body exactly once, and keep
// the DMA-engine accounting consistent with the bytes moved.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "vgpu/device.hpp"

namespace gr::vgpu {
namespace {

class DeviceStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceStress, RandomOpDagDrainsAndAccountsCorrectly) {
  util::Rng rng(GetParam());
  DeviceConfig config = DeviceConfig::k20c();
  config.global_memory_bytes = 8 * 1024 * 1024;
  Device dev(config);

  const int stream_count = 1 + static_cast<int>(rng.below(6));
  std::vector<Stream*> streams;
  streams.push_back(&dev.default_stream());
  for (int s = 1; s < stream_count; ++s)
    streams.push_back(&dev.create_stream());

  std::vector<char> host(64 * 1024);
  auto buf = dev.alloc<char>(host.size());

  const int ops = 120;
  long kernel_runs = 0;
  long host_runs = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t copies_up = 0;
  std::uint64_t copies_down = 0;
  std::vector<Event*> recorded;

  for (int i = 0; i < ops; ++i) {
    Stream& stream = *streams[rng.below(streams.size())];
    switch (rng.below(6)) {
      case 0: {
        const std::uint64_t bytes = 1 + rng.below(host.size());
        dev.memcpy_h2d(stream, buf.data(), host.data(), bytes);
        bytes_up += bytes;
        ++copies_up;
        break;
      }
      case 1: {
        const std::uint64_t bytes = 1 + rng.below(host.size());
        dev.memcpy_d2h(stream, host.data(), buf.data(), bytes);
        bytes_down += bytes;
        ++copies_down;
        break;
      }
      case 2: {
        KernelCost cost;
        cost.threads = 1 + rng.below(50'000);
        cost.sequential_bytes = rng.below(1 << 20);
        cost.random_accesses = rng.below(10'000);
        dev.launch(stream, cost, [&] { ++kernel_runs; });
        break;
      }
      case 3: {
        Event& event = dev.create_event();
        dev.record_event(stream, event);
        recorded.push_back(&event);
        break;
      }
      case 4: {
        // Wait on a previously recorded event only: waiting on an event
        // that is never recorded would (correctly) deadlock the stream.
        if (recorded.empty()) break;
        dev.wait_event(stream, *recorded[rng.below(recorded.size())]);
        break;
      }
      default:
        dev.host_task(stream, rng.uniform(0.0, 1e-4),
                      [&] { ++host_runs; });
        break;
    }
  }
  long expected_kernels = 0;
  long expected_host = 0;
  // Count what we enqueued by replaying the recorded tallies post-sync.
  dev.synchronize();
  expected_kernels = static_cast<long>(dev.stats().kernels_launched);
  expected_host = host_runs;  // every enqueued host task ran
  (void)expected_host;

  EXPECT_EQ(kernel_runs, expected_kernels);
  EXPECT_EQ(dev.stats().bytes_h2d, bytes_up);
  EXPECT_EQ(dev.stats().bytes_d2h, bytes_down);
  EXPECT_EQ(dev.stats().h2d_ops, copies_up);
  EXPECT_EQ(dev.stats().d2h_ops, copies_down);
  // Engine busy time can never exceed wall time, and wall time must be
  // at least the bigger DMA engine's busy time.
  const double wall = dev.now();
  EXPECT_LE(dev.stats().h2d_busy_seconds, wall + 1e-12);
  EXPECT_LE(dev.stats().d2h_busy_seconds, wall + 1e-12);
  EXPECT_LE(dev.stats().kernel_busy_seconds, wall + 1e-12);
  EXPECT_GE(wall, dev.stats().h2d_busy_seconds - 1e-12);
  // Every recorded event fired at a sane time.
  for (const Event* event : recorded) {
    EXPECT_TRUE(event->recorded());
    EXPECT_GE(event->time(), 0.0);
    EXPECT_LE(event->time(), wall);
  }
  // Drained device: a second synchronize is a no-op.
  const double after = dev.now();
  dev.synchronize();
  EXPECT_DOUBLE_EQ(dev.now(), after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceStress,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gr::vgpu

#include "vgpu/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace gr::vgpu {
namespace {

DeviceConfig test_config() {
  DeviceConfig config = DeviceConfig::k20c();
  config.global_memory_bytes = 64 * 1024 * 1024;
  return config;
}

double dma_seconds(const DeviceConfig& c, std::uint64_t bytes) {
  return static_cast<double>(bytes) / (c.pcie_bandwidth * c.dma_efficiency);
}

TEST(Device, MemcpyRoundTripMovesRealBytes) {
  Device dev(test_config());
  std::vector<int> host_src(1000);
  std::iota(host_src.begin(), host_src.end(), 0);
  std::vector<int> host_dst(1000, -1);
  auto buf = dev.alloc<int>(1000);
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host_src.data(),
                 1000 * sizeof(int));
  dev.memcpy_d2h(dev.default_stream(), host_dst.data(), buf.data(),
                 1000 * sizeof(int));
  dev.synchronize();
  EXPECT_EQ(host_dst, host_src);
  EXPECT_EQ(dev.stats().bytes_h2d, 4000u);
  EXPECT_EQ(dev.stats().bytes_d2h, 4000u);
  EXPECT_EQ(dev.stats().h2d_ops, 1u);
  EXPECT_EQ(dev.stats().d2h_ops, 1u);
}

TEST(Device, SingleMemcpyTimeMatchesModel) {
  const DeviceConfig config = test_config();
  Device dev(config);
  std::vector<char> host(1'000'000);
  auto buf = dev.alloc<char>(host.size());
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), host.size());
  dev.synchronize();
  EXPECT_NEAR(dev.now(),
              config.memcpy_setup_latency + dma_seconds(config, host.size()),
              1e-12);
}

TEST(Device, SameStreamCopiesSerializeSetupLatency) {
  const DeviceConfig config = test_config();
  Device dev(config);
  std::vector<char> host(1'000'000);
  auto buf = dev.alloc<char>(2 * host.size());
  for (int i = 0; i < 2; ++i)
    dev.memcpy_h2d(dev.default_stream(), buf.data() + i * host.size(),
                   host.data(), host.size());
  dev.synchronize();
  EXPECT_NEAR(dev.now(),
              2 * (config.memcpy_setup_latency +
                   dma_seconds(config, host.size())),
              1e-12);
}

TEST(Device, SprayAcrossStreamsOverlapsSetupLatency) {
  // The spray operation's benefit: K copies on K streams pipeline their
  // setup latencies, so total < K * (setup + transfer).
  const DeviceConfig config = test_config();
  constexpr int kCopies = 8;
  constexpr std::uint64_t kBytes = 250'000;

  Device serial(config);
  {
    std::vector<char> host(kBytes);
    auto buf = serial.alloc<char>(kCopies * kBytes);
    for (int i = 0; i < kCopies; ++i)
      serial.memcpy_h2d(serial.default_stream(), buf.data() + i * kBytes,
                        host.data(), kBytes);
    serial.synchronize();
  }

  Device sprayed(config);
  {
    std::vector<char> host(kBytes);
    auto buf = sprayed.alloc<char>(kCopies * kBytes);
    for (int i = 0; i < kCopies; ++i)
      sprayed.memcpy_h2d(sprayed.create_stream(), buf.data() + i * kBytes,
                         host.data(), kBytes);
    sprayed.synchronize();
  }

  const double transfer = dma_seconds(config, kBytes);
  EXPECT_NEAR(serial.now(),
              kCopies * (config.memcpy_setup_latency + transfer), 1e-12);
  EXPECT_NEAR(sprayed.now(),
              config.memcpy_setup_latency + kCopies * transfer, 1e-12);
  EXPECT_LT(sprayed.now(), serial.now());
}

TEST(Device, H2DAndD2HEnginesAreIndependent) {
  const DeviceConfig config = test_config();
  Device dev(config);
  std::vector<char> up(1'000'000);
  std::vector<char> down(1'000'000);
  auto a = dev.alloc<char>(up.size());
  auto b = dev.alloc<char>(down.size());
  dev.memcpy_h2d(dev.create_stream(), a.data(), up.data(), up.size());
  dev.memcpy_d2h(dev.create_stream(), down.data(), b.data(), down.size());
  dev.synchronize();
  // Full overlap: duration of one copy, not two.
  EXPECT_NEAR(dev.now(),
              config.memcpy_setup_latency + dma_seconds(config, up.size()),
              1e-12);
}

TEST(Device, PageableCopyIsSlowerThanPinned) {
  const DeviceConfig config = test_config();
  Device dev(config);
  std::vector<char> host(1'000'000);
  auto buf = dev.alloc<char>(host.size());
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), host.size(),
                 /*pinned=*/false);
  dev.synchronize();
  const double pinned_time =
      config.memcpy_setup_latency + dma_seconds(config, host.size());
  EXPECT_GT(dev.now(), pinned_time * 1.5);
}

TEST(Device, KernelExecutesBodyAndChargesWork) {
  const DeviceConfig config = test_config();
  Device dev(config);
  bool ran = false;
  KernelCost cost;
  cost.threads = config.full_occupancy_threads;  // full rate
  cost.flops_per_thread = 0.0;
  cost.sequential_bytes = static_cast<std::uint64_t>(config.mem_bandwidth);
  dev.launch(dev.default_stream(), cost, [&] { ran = true; });
  dev.synchronize();
  EXPECT_TRUE(ran);
  EXPECT_NEAR(dev.now(), config.kernel_launch_latency + 1.0, 1e-9);
  EXPECT_EQ(dev.stats().kernels_launched, 1u);
}

TEST(Device, StreamOrderKernelSeesCopiedData) {
  Device dev(test_config());
  std::vector<int> host = {1, 2, 3, 4};
  auto buf = dev.alloc<int>(4);
  int sum = 0;
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(),
                 4 * sizeof(int));
  dev.launch(dev.default_stream(), KernelCost{.threads = 4}, [&] {
    for (int i = 0; i < 4; ++i) sum += buf[static_cast<std::size_t>(i)];
  });
  dev.synchronize();
  EXPECT_EQ(sum, 10);
}

TEST(Device, ConcurrentSmallKernelsShareTheDevice) {
  // Two half-occupancy kernels on separate streams finish together in
  // the time one would take alone (compute-compute scheme).
  const DeviceConfig config = test_config();
  KernelCost cost;
  cost.threads = config.full_occupancy_threads / 2;
  cost.flops_per_thread = 0.0;
  cost.sequential_bytes =
      static_cast<std::uint64_t>(config.mem_bandwidth / 10.0);  // 0.1 s work

  Device solo(config);
  solo.launch(solo.create_stream(), cost, [] {});
  solo.synchronize();
  const double solo_time = solo.now();
  EXPECT_NEAR(solo_time, config.kernel_launch_latency + 0.2, 1e-9);

  Device pair(config);
  pair.launch(pair.create_stream(), cost, [] {});
  pair.launch(pair.create_stream(), cost, [] {});
  pair.synchronize();
  EXPECT_NEAR(pair.now(), solo_time, 1e-6);
}

TEST(Device, KernelBacklogBeyondHyperQStillCompletes) {
  DeviceConfig config = test_config();
  config.max_concurrent_kernels = 4;
  Device dev(config);
  int ran = 0;
  KernelCost cost;
  cost.threads = 64;
  for (int i = 0; i < 20; ++i)
    dev.launch(dev.create_stream(), cost, [&] { ++ran; });
  dev.synchronize();
  EXPECT_EQ(ran, 20);
  EXPECT_EQ(dev.stats().kernels_launched, 20u);
}

TEST(Device, EventOrdersAcrossStreams) {
  Device dev(test_config());
  Stream& a = dev.create_stream();
  Stream& b = dev.create_stream();
  Event& ev = dev.create_event();
  std::vector<int> order;
  KernelCost slow;
  slow.threads = 1u << 20;
  slow.sequential_bytes = 1u << 30;  // long kernel on stream a
  dev.launch(a, slow, [&] { order.push_back(1); });
  dev.record_event(a, ev);
  dev.wait_event(b, ev);
  dev.launch(b, KernelCost{.threads = 1}, [&] { order.push_back(2); });
  dev.synchronize();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(ev.recorded());
  EXPECT_GT(ev.time(), 0.0);
}

TEST(Device, WaitOnAlreadyRecordedEventDoesNotBlock) {
  Device dev(test_config());
  Stream& a = dev.create_stream();
  Event& ev = dev.create_event();
  dev.record_event(a, ev);
  dev.synchronize();
  Stream& b = dev.create_stream();
  bool ran = false;
  dev.wait_event(b, ev);
  dev.launch(b, KernelCost{.threads = 1}, [&] { ran = true; });
  dev.synchronize();
  EXPECT_TRUE(ran);
}

TEST(Device, HostTaskRunsAndChargesDuration) {
  Device dev(test_config());
  bool ran = false;
  dev.host_task(dev.default_stream(), 0.5, [&] { ran = true; });
  dev.synchronize();
  EXPECT_TRUE(ran);
  EXPECT_NEAR(dev.now(), 0.5, 1e-12);
}

TEST(Device, AllocOverDeviceCapacityThrows) {
  DeviceConfig config = test_config();
  config.global_memory_bytes = 1024;
  Device dev(config);
  EXPECT_THROW(dev.alloc<double>(1024), DeviceOutOfMemory);
}

TEST(Device, ResetStatsZeroesCounters) {
  const DeviceConfig config = test_config();
  Device dev(config);
  std::vector<char> host(100'000);
  auto buf = dev.alloc<char>(host.size());
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), host.size());
  dev.synchronize();
  EXPECT_GT(dev.stats().memcpy_busy_seconds(), 0.0);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().bytes_h2d, 0u);
  dev.synchronize();
  EXPECT_NEAR(dev.stats().memcpy_busy_seconds(), 0.0, 1e-15);
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), host.size());
  dev.synchronize();
  EXPECT_NEAR(dev.stats().memcpy_busy_seconds(),
              dma_seconds(config, host.size()), 1e-12);
}

TEST(Device, LaunchNVisitsEveryIndex) {
  Device dev(test_config());
  std::vector<int> hits(100, 0);
  dev.launch_n(dev.default_stream(), KernelCost{}, hits.size(),
               [&](std::size_t i) { hits[i]++; });
  dev.synchronize();
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Device, AdvanceHostTimeMovesClock) {
  Device dev(test_config());
  dev.advance_host_time(2.5);
  EXPECT_DOUBLE_EQ(dev.now(), 2.5);
  std::vector<char> host(1000);
  auto buf = dev.alloc<char>(1000);
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), 1000);
  dev.synchronize();
  EXPECT_GT(dev.now(), 2.5);
}

TEST(Device, ComputeTransferOverlapWithDoubleBuffering) {
  // Classic pipeline: copies on one stream, kernels on another, ordered
  // by events. Total time should be well below the serialized sum.
  DeviceConfig config = test_config();
  config.global_memory_bytes = 256 * 1024 * 1024;
  constexpr int kChunks = 8;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(config.pcie_bandwidth / 200.0);  // ~5 ms

  auto run = [&](bool overlap) {
    Device dev(config);
    std::vector<char> host(bytes);
    auto buf = dev.alloc<char>(2 * bytes);  // double buffer
    KernelCost cost;
    cost.threads = config.full_occupancy_threads;
    // Kernel work roughly equals transfer time.
    cost.sequential_bytes = static_cast<std::uint64_t>(
        config.mem_bandwidth *
        (static_cast<double>(bytes) /
         (config.pcie_bandwidth * config.dma_efficiency)));
    if (!overlap) {
      Stream& s = dev.default_stream();
      for (int i = 0; i < kChunks; ++i) {
        dev.memcpy_h2d(s, buf.data() + (i % 2) * bytes, host.data(), bytes);
        dev.launch(s, cost, [] {});
        dev.synchronize();
      }
      return dev.now();
    }
    Stream& copy = dev.create_stream();
    Stream& compute = dev.create_stream();
    std::vector<Event*> kernel_done;
    for (int i = 0; i < kChunks; ++i) {
      // Don't overwrite a buffer until the kernel two chunks back (which
      // used this half of the double buffer) has finished.
      if (i >= 2) dev.wait_event(copy, *kernel_done[i - 2]);
      dev.memcpy_h2d(copy, buf.data() + (i % 2) * bytes, host.data(), bytes);
      Event& copied = dev.create_event();
      dev.record_event(copy, copied);
      dev.wait_event(compute, copied);
      dev.launch(compute, cost, [] {});
      Event& done = dev.create_event();
      dev.record_event(compute, done);
      kernel_done.push_back(&done);
    }
    dev.synchronize();
    return dev.now();
  };

  const double serial = run(false);
  const double overlapped = run(true);
  EXPECT_LT(overlapped, serial * 0.65);
}

}  // namespace
}  // namespace gr::vgpu

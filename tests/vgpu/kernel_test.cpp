#include "vgpu/kernel.hpp"

#include <gtest/gtest.h>

namespace gr::vgpu {
namespace {

const DeviceConfig kConfig = DeviceConfig::k20c();

TEST(KernelCost, ComputeBoundWork) {
  KernelCost cost;
  cost.threads = 1'000'000;
  cost.flops_per_thread = 3520.0;  // 3.52e9 FLOP total at 3.52e12 FLOP/s
  cost.sequential_bytes = 0;
  EXPECT_NEAR(cost.work_seconds(kConfig), 1e-3, 1e-9);
}

TEST(KernelCost, SequentialMemoryBoundWork) {
  KernelCost cost;
  cost.threads = 1000;
  cost.flops_per_thread = 0.0;
  cost.sequential_bytes = 208'000'000;  // 1 ms at 208 GB/s
  EXPECT_NEAR(cost.work_seconds(kConfig), 1e-3, 1e-9);
}

TEST(KernelCost, RandomAccessesChargedAtReducedBandwidth) {
  KernelCost seq;
  seq.sequential_bytes = 32'000'000;
  KernelCost random;
  random.random_accesses = 1'000'000;  // same 32 MB of transactions
  EXPECT_NEAR(random.work_seconds(kConfig) / seq.work_seconds(kConfig),
              1.0 / kConfig.random_access_efficiency, 1e-6);
}

TEST(KernelCost, MemoryAndComputeOverlap) {
  // Duration is max(compute, memory), not the sum.
  KernelCost cost;
  cost.threads = 1'000'000;
  cost.flops_per_thread = 3520.0;       // 1 ms compute
  cost.sequential_bytes = 104'000'000;  // 0.5 ms memory
  EXPECT_NEAR(cost.work_seconds(kConfig), 1e-3, 1e-9);
}

TEST(KernelCost, RateCapScalesWithThreads) {
  KernelCost cost;
  cost.threads = kConfig.full_occupancy_threads / 4;
  EXPECT_NEAR(cost.rate_cap(kConfig), 0.25, 1e-12);
  cost.threads = kConfig.full_occupancy_threads * 10;
  EXPECT_DOUBLE_EQ(cost.rate_cap(kConfig), 1.0);
}

TEST(KernelCost, RateCapHasFloor) {
  KernelCost cost;
  cost.threads = 1;
  EXPECT_DOUBLE_EQ(cost.rate_cap(kConfig), kConfig.min_kernel_rate);
  cost.threads = 0;
  EXPECT_DOUBLE_EQ(cost.rate_cap(kConfig), kConfig.min_kernel_rate);
}

TEST(DeviceConfigPresets, ScaledKeepsRatesShrinksCapacity) {
  const DeviceConfig full = DeviceConfig::k20c();
  const DeviceConfig scaled = DeviceConfig::k20c_scaled(0.25);
  EXPECT_EQ(scaled.global_memory_bytes, full.global_memory_bytes / 4);
  EXPECT_DOUBLE_EQ(scaled.pcie_bandwidth, full.pcie_bandwidth);
  EXPECT_DOUBLE_EQ(scaled.mem_bandwidth, full.mem_bandwidth);
  const DeviceConfig bench = DeviceConfig::bench_default();
  EXPECT_EQ(bench.global_memory_bytes, full.global_memory_bytes / 96);
}

}  // namespace
}  // namespace gr::vgpu

#include "vgpu/mem_model.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace gr::vgpu {
namespace {

const DeviceConfig kConfig = DeviceConfig::k20c();

// The paper's Figure 4 workload: 100,000,000 doubles.
AccessWorkload figure4(AccessPattern pattern) {
  AccessWorkload w;
  w.buffer_bytes = 100'000'000ull * 8;
  w.accesses = 100'000'000;
  w.element_bytes = 8.0;
  w.pattern = pattern;
  return w;
}

double t(TransferMethod m, AccessPattern p) {
  return access_time_seconds(kConfig, m, figure4(p));
}

TEST(MemModel, Figure4SequentialOrderingPinnedWins) {
  const double pinned = t(TransferMethod::kPinned, AccessPattern::kSequential);
  const double expl = t(TransferMethod::kExplicit, AccessPattern::kSequential);
  const double managed =
      t(TransferMethod::kManaged, AccessPattern::kSequential);
  EXPECT_LT(pinned, expl);
  EXPECT_LT(expl, managed);
}

TEST(MemModel, Figure4RandomOrderingExplicitWinsPinnedWorst) {
  const double pinned = t(TransferMethod::kPinned, AccessPattern::kRandom);
  const double expl = t(TransferMethod::kExplicit, AccessPattern::kRandom);
  const double managed = t(TransferMethod::kManaged, AccessPattern::kRandom);
  EXPECT_LT(expl, managed);
  EXPECT_LT(managed, pinned);
  // The paper's random-access pinned penalty is dramatic (load/store over
  // PCIe with no prefetch benefit): order-of-magnitude worse.
  EXPECT_GT(pinned / expl, 10.0);
}

TEST(MemModel, RandomCostsMoreThanSequentialForEveryMethod) {
  for (TransferMethod m : {TransferMethod::kExplicit, TransferMethod::kPinned,
                           TransferMethod::kManaged}) {
    EXPECT_GT(t(m, AccessPattern::kRandom), t(m, AccessPattern::kSequential))
        << method_name(m);
  }
}

TEST(MemModel, TimesScaleWithBufferSize) {
  for (TransferMethod m : {TransferMethod::kExplicit, TransferMethod::kPinned,
                           TransferMethod::kManaged}) {
    AccessWorkload small = figure4(AccessPattern::kSequential);
    small.buffer_bytes /= 10;
    small.accesses /= 10;
    const double small_t = access_time_seconds(kConfig, m, small);
    const double big_t = t(m, AccessPattern::kSequential);
    EXPECT_NEAR(big_t / small_t, 10.0, 1.5) << method_name(m);
  }
}

TEST(MemModel, ExplicitSequentialIsDmaPlusDeviceRead) {
  const AccessWorkload w = figure4(AccessPattern::kSequential);
  const double expected =
      kConfig.memcpy_setup_latency +
      static_cast<double>(w.buffer_bytes) /
          (kConfig.pcie_bandwidth * kConfig.dma_efficiency) +
      static_cast<double>(w.buffer_bytes) / kConfig.mem_bandwidth;
  EXPECT_NEAR(t(TransferMethod::kExplicit, AccessPattern::kSequential),
              expected, 1e-9);
}

TEST(MemModel, ZeroBufferRejected) {
  AccessWorkload w;
  w.buffer_bytes = 0;
  EXPECT_THROW(access_time_seconds(kConfig, TransferMethod::kExplicit, w),
               util::CheckError);
}

TEST(MemModel, Names) {
  EXPECT_STREQ(method_name(TransferMethod::kExplicit), "Explicit H2D");
  EXPECT_STREQ(method_name(TransferMethod::kPinned), "Pinned (UVA)");
  EXPECT_STREQ(method_name(TransferMethod::kManaged), "Managed");
  EXPECT_STREQ(pattern_name(AccessPattern::kSequential), "sequential");
  EXPECT_STREQ(pattern_name(AccessPattern::kRandom), "random");
}

}  // namespace
}  // namespace gr::vgpu

#include "vgpu/memory.hpp"

#include <gtest/gtest.h>

namespace gr::vgpu {
namespace {

TEST(DeviceAllocator, TracksUsage) {
  DeviceAllocator alloc(1000);
  void* p = alloc.allocate(400);
  EXPECT_EQ(alloc.used(), 400u);
  EXPECT_EQ(alloc.available(), 600u);
  alloc.deallocate(p, 400);
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(DeviceAllocator, ThrowsOverCapacity) {
  DeviceAllocator alloc(1000);
  void* p = alloc.allocate(800);
  EXPECT_THROW(alloc.allocate(300), DeviceOutOfMemory);
  alloc.deallocate(p, 800);
  // After freeing, the same request succeeds.
  void* q = alloc.allocate(300);
  alloc.deallocate(q, 300);
}

TEST(DeviceAllocator, OomCarriesRequestSize) {
  DeviceAllocator alloc(100);
  try {
    alloc.allocate(200);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 200u);
  }
}

TEST(DeviceAllocator, PeakUsageIsSticky) {
  DeviceAllocator alloc(1000);
  void* a = alloc.allocate(600);
  alloc.deallocate(a, 600);
  void* b = alloc.allocate(100);
  alloc.deallocate(b, 100);
  EXPECT_EQ(alloc.peak_used(), 600u);
}

TEST(DeviceAllocator, ZeroByteAllocationIsFree) {
  DeviceAllocator alloc(10);
  EXPECT_EQ(alloc.allocate(0), nullptr);
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(DeviceBuffer, RaiiReturnsCapacity) {
  DeviceAllocator alloc(4096);
  {
    DeviceBuffer<double> buf(alloc, 64);
    EXPECT_EQ(buf.size(), 64u);
    EXPECT_EQ(buf.size_bytes(), 512u);
    EXPECT_EQ(alloc.used(), 512u);
    buf[0] = 1.5;
    buf[63] = 2.5;
    EXPECT_DOUBLE_EQ(buf[0], 1.5);
    EXPECT_DOUBLE_EQ(buf[63], 2.5);
  }
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  DeviceAllocator alloc(4096);
  DeviceBuffer<int> a(alloc, 10);
  a[3] = 42;
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[3], 42);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(alloc.used(), 10 * sizeof(int));
  b = DeviceBuffer<int>();
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(DeviceBuffer, AllocationFailurePropagates) {
  DeviceAllocator alloc(16);
  EXPECT_THROW(DeviceBuffer<double>(alloc, 100), DeviceOutOfMemory);
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(DeviceBuffer, SpanViewsData) {
  DeviceAllocator alloc(4096);
  DeviceBuffer<int> buf(alloc, 4);
  for (int i = 0; i < 4; ++i) buf[static_cast<std::size_t>(i)] = i * i;
  auto view = buf.span();
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(view[2], 4);
}

}  // namespace
}  // namespace gr::vgpu

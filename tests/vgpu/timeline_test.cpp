#include <gtest/gtest.h>

#include <vector>

#include "vgpu/device.hpp"

namespace gr::vgpu {
namespace {

DeviceConfig recording_config() {
  DeviceConfig config = DeviceConfig::k20c();
  config.global_memory_bytes = 16 * 1024 * 1024;
  config.record_timeline = true;
  return config;
}

TEST(Timeline, DisabledByDefault) {
  Device dev(DeviceConfig::k20c());
  std::vector<char> host(1024);
  auto buf = dev.alloc<char>(1024);
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), 1024);
  dev.synchronize();
  EXPECT_TRUE(dev.timeline().empty());
}

TEST(Timeline, RecordsCopiesKernelsAndHostTasks) {
  Device dev(recording_config());
  std::vector<char> host(4096);
  auto buf = dev.alloc<char>(4096);
  dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(), 4096);
  dev.launch(dev.default_stream(), KernelCost{.threads = 128}, [] {});
  dev.memcpy_d2h(dev.default_stream(), host.data(), buf.data(), 4096);
  dev.host_task(dev.default_stream(), 1e-3, [] {});
  dev.synchronize();
  ASSERT_EQ(dev.timeline().size(), 4u);
  EXPECT_EQ(dev.timeline()[0].kind, TimelineEntry::Kind::kH2D);
  EXPECT_EQ(dev.timeline()[1].kind, TimelineEntry::Kind::kKernel);
  EXPECT_EQ(dev.timeline()[2].kind, TimelineEntry::Kind::kD2H);
  EXPECT_EQ(dev.timeline()[3].kind, TimelineEntry::Kind::kHostTask);
  EXPECT_EQ(dev.timeline()[0].bytes, 4096u);
}

TEST(Timeline, EntriesAreWellFormedAndStreamOrdered) {
  Device dev(recording_config());
  std::vector<char> host(64 * 1024);
  auto buf = dev.alloc<char>(host.size());
  for (int i = 0; i < 10; ++i) {
    dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(),
                   host.size());
    dev.launch(dev.default_stream(), KernelCost{.threads = 1024}, [] {});
  }
  dev.synchronize();
  ASSERT_EQ(dev.timeline().size(), 20u);
  double prev_end = 0.0;
  for (const TimelineEntry& entry : dev.timeline()) {
    EXPECT_LE(entry.start, entry.end);
    EXPECT_EQ(entry.stream, 0);
    // Single stream: completion order is serial.
    EXPECT_GE(entry.end, prev_end);
    prev_end = entry.end;
  }
}

TEST(Timeline, ShowsCopyComputeOverlapAcrossStreams) {
  Device dev(recording_config());
  std::vector<char> host(2 * 1024 * 1024);
  auto buf = dev.alloc<char>(host.size());
  Stream& copy = dev.create_stream();
  Stream& compute = dev.create_stream();
  dev.memcpy_h2d(copy, buf.data(), host.data(), host.size());
  KernelCost cost;
  cost.threads = 1u << 20;
  cost.sequential_bytes = 64ull << 20;
  dev.launch(compute, cost, [] {});
  dev.synchronize();
  ASSERT_EQ(dev.timeline().size(), 2u);
  const TimelineEntry& a = dev.timeline()[0];
  const TimelineEntry& b = dev.timeline()[1];
  // The two operations overlap in simulated time.
  EXPECT_LT(std::max(a.start, b.start), std::min(a.end, b.end));
}

TEST(Timeline, BusyTimeMatchesSummedCopyEntries) {
  Device dev(recording_config());
  std::vector<char> host(256 * 1024);
  auto buf = dev.alloc<char>(host.size());
  for (int i = 0; i < 5; ++i)
    dev.memcpy_h2d(dev.default_stream(), buf.data(), host.data(),
                   host.size());
  dev.synchronize();
  double copied = 0.0;
  for (const TimelineEntry& entry : dev.timeline())
    if (entry.kind == TimelineEntry::Kind::kH2D)
      copied += entry.end - entry.start;
  EXPECT_NEAR(copied, dev.stats().h2d_busy_seconds, 1e-12);
}

}  // namespace
}  // namespace gr::vgpu

#!/usr/bin/env python3
"""Render a GraphReduce serving-telemetry NDJSON stream as text.

The JobScheduler (src/core/engine/scheduler.cpp) streams one JSON
object per line through obs::TelemetrySink: a provenance header, then
job_submit / job_admit / job_start / memory_grant / rewiden / transfer
/ cache_hit / cache_evict / iteration_end / job_finish events, and a
closing drain record. All timestamps are simulated seconds; the stream
is byte-identical for any --threads value, so it diffs and archives
cleanly.

This tool turns one stream into:

  * a per-tenant summary table (from job_finish events): width, steps,
    queue/latency, attributed H2D/D2H bytes and busy seconds, slice
    re-widenings, and cross-tenant shard-cache hits — the same
    attribution the scheduler prints at drain time;
  * a per-shard transfer flame (from transfer/cache_hit events): a
    text bar chart in the style of ProfilingObserver::print_shard_flame
    (src/obs/profile.cpp), bar length proportional to PCIe link bytes,
    annotated with the per-strategy visit mix and cache savings.

With --check it also validates the stream: every line must parse as a
JSON object with a known "event" type carrying the expected fields,
and the per-tenant attribution in the job_finish records must sum to
the drain record's device-wide totals (integer fields exactly,
busy-seconds to 1e-9 relative tolerance). Non-zero exit on violation —
this is the CI telemetry-smoke gate.

Usage:
  tools/telemetry_report.py STREAM.ndjson [--check] [--max-rows N]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

# event -> fields that must be present (beyond "event"; "t" is checked
# for everything but the header).
SCHEMA = {
    "header": {"schema", "clock"},
    "job_submit": {"job", "program", "label"},
    "job_admit": {"job", "label", "width", "concurrency", "queued",
                  "slice_bytes", "queue_seconds"},
    "job_start": {"job"},
    "memory_grant": {"job", "partitions", "streaming_slots",
                     "cache_slots", "fully_resident"},
    "rewiden": {"job", "width_before", "width_after", "slice_bytes",
                "lanes_added", "cache_slots"},
    "transfer": {"job", "shard", "strategy", "raw_bytes", "link_bytes"},
    "cache_hit": {"job", "shard", "groups", "bytes_saved"},
    "cache_evict": {"job", "shard", "victim", "writeback_groups"},
    "iteration_end": {"job", "iteration", "active_vertices",
                      "shards_processed", "shards_skipped", "cache_hits",
                      "cache_misses"},
    "job_finish": {"job", "label", "width", "steps", "latency_seconds",
                   "queue_seconds", "bytes_h2d", "bytes_d2h", "h2d_ops",
                   "d2h_ops", "kernels_launched", "h2d_busy_seconds",
                   "d2h_busy_seconds", "kernel_busy_seconds",
                   "cache_slots", "cache_lane_seconds", "rewidens",
                   "shared_hits", "shared_bytes"},
    "drain": {"jobs", "tenants", "steps"},
}

ATTRIB_INT = ["bytes_h2d", "bytes_d2h", "h2d_ops", "d2h_ops",
              "kernels_launched"]
ATTRIB_BUSY = ["h2d_busy_seconds", "d2h_busy_seconds",
               "kernel_busy_seconds"]


def load(path, check):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: not JSON: {err}")
            if not isinstance(rec, dict) or "event" not in rec:
                raise SystemExit(f"{path}:{lineno}: no \"event\" field")
            if check:
                kind = rec["event"]
                if kind not in SCHEMA:
                    raise SystemExit(
                        f"{path}:{lineno}: unknown event {kind!r}")
                missing = SCHEMA[kind] - set(rec)
                if missing:
                    raise SystemExit(
                        f"{path}:{lineno}: {kind} missing fields "
                        f"{sorted(missing)}")
                if kind != "header" and "t" not in rec:
                    raise SystemExit(
                        f"{path}:{lineno}: {kind} carries no timestamp")
            records.append(rec)
    if not records or records[0]["event"] != "header":
        raise SystemExit(f"{path}: stream does not start with a header")
    return records


def fmt_bytes(n):
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024.0 or unit == "GB":
            return (f"{n:.0f}{unit}" if unit == "B"
                    else f"{n / 1.0:.2f}{unit}")
        n /= 1024.0
    return f"{n:.2f}GB"


def fmt_seconds(s):
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.1f}us"


def tenant_table(finishes):
    if not finishes:
        print("no job_finish records (did the run drain?)")
        return
    header = (f"{'job':>4}  {'label':<16}  {'width':>5}  {'steps':>5}  "
              f"{'queue':>8}  {'latency':>8}  {'h2d':>9}  {'d2h':>9}  "
              f"{'kernel-s':>9}  {'busy-s':>9}  {'cache-lane-s':>12}  "
              f"{'rewiden':>7}  {'shared':>9}")
    print("Per-tenant attribution (simulated)")
    print(header)
    print("-" * len(header))
    for rec in finishes:
        busy = rec["h2d_busy_seconds"] + rec["d2h_busy_seconds"]
        # Older streams predate re-widening / the shared shard cache.
        rewidens = rec.get("rewidens", 0)
        shared = rec.get("shared_bytes", 0)
        print(f"{rec['job']:>4}  {rec['label']:<16.16}  "
              f"{rec['width']:>5}  {rec['steps']:>5}  "
              f"{fmt_seconds(rec['queue_seconds']):>8}  "
              f"{fmt_seconds(rec['latency_seconds']):>8}  "
              f"{fmt_bytes(rec['bytes_h2d']):>9}  "
              f"{fmt_bytes(rec['bytes_d2h']):>9}  "
              f"{fmt_seconds(rec['kernel_busy_seconds']):>9}  "
              f"{fmt_seconds(busy):>9}  "
              f"{fmt_seconds(rec['cache_lane_seconds']):>12}  "
              f"{rewidens:>7}  "
              f"{fmt_bytes(shared):>9}")


def shard_flame(records, max_rows):
    """Text flame over transfer events, print_shard_flame-style: one bar
    per shard, length proportional to its total PCIe link bytes."""
    link = defaultdict(int)
    mix = defaultdict(lambda: defaultdict(int))
    saved = defaultdict(int)
    for rec in records:
        if rec["event"] == "transfer":
            link[rec["shard"]] += rec["link_bytes"]
            mix[rec["shard"]][rec["strategy"]] += 1
        elif rec["event"] == "cache_hit":
            saved[rec["shard"]] += rec["bytes_saved"]
    if not link:
        return
    rows = sorted(link.items(), key=lambda kv: (-kv[1], kv[0]))
    peak = rows[0][1]
    bar_width = 32
    print("\nShard transfer flame (bar = PCIe link bytes)")
    for shard, total in rows[:max_rows]:
        fill = int(total / peak * bar_width) if peak else 0
        bar = ("#" * fill).ljust(bar_width)
        strategies = ", ".join(
            f"{count}x {name}"
            for name, count in sorted(mix[shard].items()))
        extra = (f", {fmt_bytes(saved[shard])} saved by cache"
                 if saved.get(shard) else "")
        print(f"  shard {shard:<3} |{bar}| {fmt_bytes(total)} link, "
              f"{strategies}{extra}")
    if len(rows) > max_rows:
        print(f"  (+{len(rows) - max_rows} more shards)")


def check_attribution(finishes, drain):
    if drain is None:
        raise SystemExit("--check: stream carries no drain record")
    for field in ATTRIB_INT:
        total = sum(rec[field] for rec in finishes)
        device = drain.get(f"device_{field}")
        attrib = drain.get(f"attrib_{field}")
        if total != device or total != attrib:
            raise SystemExit(
                f"--check: {field} attribution mismatch: job_finish sum "
                f"{total}, drain attrib {attrib}, device {device}")
    for field in ATTRIB_BUSY:
        total = sum(rec[field] for rec in finishes)
        device = drain.get(f"device_{field}")
        tol = 1e-9 * max(1.0, abs(total), abs(device))
        if abs(total - device) > tol:
            raise SystemExit(
                f"--check: {field} attribution drift: job_finish sum "
                f"{total!r} vs device {device!r}")
    print(f"\ncheck ok: {len(finishes)} tenants partition the device "
          f"totals exactly")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="per-tenant summary + shard flame from a serving "
                    "telemetry NDJSON stream")
    parser.add_argument("stream", help="telemetry NDJSON file")
    parser.add_argument("--check", action="store_true",
                        help="validate the schema of every record and "
                             "the attribution invariant; non-zero exit "
                             "on violation")
    parser.add_argument("--max-rows", type=int, default=16,
                        help="shard-flame row cap (default 16)")
    args = parser.parse_args(argv)

    records = load(args.stream, args.check)
    header = records[0]
    drain = next((r for r in records if r["event"] == "drain"), None)
    finishes = [r for r in records if r["event"] == "job_finish"]

    meta = ", ".join(f"{k}={v}" for k, v in sorted(header.items())
                     if k not in ("event", "schema", "clock"))
    print(f"{args.stream}: {len(records)} records, schema "
          f"{header.get('schema')}" + (f" ({meta})" if meta else ""))
    if drain is not None:
        extras = ""
        if drain.get("rewidens"):
            extras += f", {drain['rewidens']} re-widenings"
        if drain.get("shared_cache_hits"):
            extras += (f", {drain['shared_cache_hits']} shared-cache "
                       f"hits")
        print(f"drained at t={drain['t']:.9f}s: {drain['jobs']} jobs, "
              f"{drain['tenants']} tenants, {drain['steps']} steps"
              f"{extras}\n")
    tenant_table(finishes)
    shard_flame(records, args.max_rows)
    if args.check:
        check_attribution(finishes, drain)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)

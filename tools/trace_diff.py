#!/usr/bin/env python3
"""Diff two GraphReduce Chrome trace files by simulated time.

The engine's TraceRecorder (src/obs/trace.cpp) writes deterministic
Chrome trace-event JSON: every span lives on a named track ("engine
driver", "copy engine H2D", "slot 0", ...) and two identical runs emit
byte-identical files. That makes traces diffable: when a change (a new
cache policy, a different memory budget) shifts simulated time around,
aligning the two timelines by (track, event name) and ranking the
duration deltas answers "where did the time go?" without opening a UI.

Alignment model: within each (track, name) pair, the i-th occurrence in
trace A is matched with the i-th occurrence in trace B — correct for
the engine's deterministic driver ordering, where the n-th "pass
gather" span is the same logical pass in both runs. Unmatched
occurrences (one run streamed a shard the other served from cache)
are accounted separately as added/removed time.

Usage:
  tools/trace_diff.py A.json B.json [--top N] [--track TRACK ...]
                      [--strip-track-prefix P ...]
                      [--fail-above-us US] [--csv OUT]

--track is repeatable and accepts comma-separated substrings; a span
counts when ANY of them matches its track name ("copy engine H2D,copy
engine D2H" selects both copy engines).

--strip-track-prefix removes a leading per-job prefix ("job0/") from
track names in BOTH traces before filtering and alignment, so a
scheduler-served run (whose tracks are namespaced per job) aligns with
a classic run of the same program. It also doubles as a filter by job:
with prefixes given, tracks carrying NONE of them keep their names
untouched, so they simply fail to align with the other trace's stripped
tracks unless identically named there.

By default the exit code is 0 even when the traces differ — reporting
mode; pair it with --csv in CI to archive the comparison as an
artifact. With --fail-above-us the tool becomes a gate: it exits 1
when the net simulated-time delta (B - A) over the selected tracks
exceeds the threshold, so CI can assert e.g. "no H2D-track
regressions" with --track "copy engine H2D" --fail-above-us 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    """Returns (track_names, spans, instants) from one trace file.

    spans: list of (track, name, start_us, dur_us) from X events and
    b/e async pairs (matched by (cat, id, name)).
    instants: Counter-style dict (track, name) -> count from i events.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])

    tids = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tids[ev.get("tid")] = ev.get("args", {}).get("name", "?")

    def track(ev):
        tid = ev.get("tid")
        return tids.get(tid, f"tid {tid}")

    spans = []
    instants = defaultdict(int)
    open_async = {}  # (tid, cat, id, name) -> start ts
    open_sync = defaultdict(list)  # (tid, name) -> stack of B ts
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            spans.append((track(ev), ev.get("name", "?"),
                          float(ev.get("ts", 0.0)),
                          float(ev.get("dur", 0.0))))
        elif ph == "b":
            key = (ev.get("tid"), ev.get("cat"), ev.get("id"),
                   ev.get("name"))
            open_async[key] = float(ev.get("ts", 0.0))
        elif ph == "e":
            key = (ev.get("tid"), ev.get("cat"), ev.get("id"),
                   ev.get("name"))
            start = open_async.pop(key, None)
            if start is not None:
                spans.append((track(ev), ev.get("name", "?"), start,
                              float(ev.get("ts", 0.0)) - start))
        elif ph == "B":
            open_sync[(ev.get("tid"), ev.get("name"))].append(
                float(ev.get("ts", 0.0)))
        elif ph == "E":
            stack = open_sync.get((ev.get("tid"), ev.get("name")))
            if stack:
                start = stack.pop()
                spans.append((track(ev), ev.get("name", "?"), start,
                              float(ev.get("ts", 0.0)) - start))
        elif ph == "i":
            instants[(track(ev), ev.get("name", "?"))] += 1
    return tids, spans, instants


def strip_prefixes(spans, instants, prefixes):
    """Removes the first matching per-job prefix from every track name."""
    if not prefixes:
        return spans, instants

    def stripped(track):
        for prefix in prefixes:
            if track.startswith(prefix):
                return track[len(prefix):]
        return track

    spans = [(stripped(track), name, ts, dur)
             for track, name, ts, dur in spans]
    out = defaultdict(int)
    for (track, name), count in instants.items():
        out[(stripped(track), name)] += count
    return spans, out


def group_spans(spans):
    """(track, name) -> list of durations, in record (simulated) order."""
    groups = defaultdict(list)
    for track, name, _ts, dur in spans:
        groups[(track, name)].append(dur)
    return groups


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="align two GraphReduce traces by track+name and "
                    "rank the simulated-time deltas")
    parser.add_argument("trace_a", help="baseline trace JSON")
    parser.add_argument("trace_b", help="comparison trace JSON")
    parser.add_argument("--top", type=int, default=15,
                        help="show the N largest absolute deltas")
    parser.add_argument("--track", action="append", default=None,
                        help="restrict to matching tracks (substring "
                             "match); repeatable, and each value may "
                             "hold comma-separated alternatives")
    parser.add_argument("--strip-track-prefix", action="append",
                        default=None, metavar="PREFIX",
                        help="strip this per-job track prefix (e.g. "
                             "'job0/') from track names in both traces "
                             "before filtering and alignment; repeatable")
    parser.add_argument("--fail-above-us", type=float, default=None,
                        metavar="US",
                        help="exit 1 when the net simulated-time delta "
                             "(B - A) over the selected tracks exceeds "
                             "this many microseconds (gate mode)")
    parser.add_argument("--csv", default=None,
                        help="also write the full per-group table as CSV")
    args = parser.parse_args(argv)

    track_filters = [part.strip()
                     for raw in (args.track or [])
                     for part in raw.split(",") if part.strip()]

    def track_selected(track):
        return (not track_filters
                or any(sub in track for sub in track_filters))

    _, spans_a, instants_a = load_events(args.trace_a)
    _, spans_b, instants_b = load_events(args.trace_b)
    prefixes = args.strip_track_prefix or []
    spans_a, instants_a = strip_prefixes(spans_a, instants_a, prefixes)
    spans_b, instants_b = strip_prefixes(spans_b, instants_b, prefixes)
    groups_a = group_spans(spans_a)
    groups_b = group_spans(spans_b)

    rows = []
    for key in sorted(set(groups_a) | set(groups_b)):
        track, name = key
        if not track_selected(track):
            continue
        durs_a = groups_a.get(key, [])
        durs_b = groups_b.get(key, [])
        paired = min(len(durs_a), len(durs_b))
        matched_delta = sum(durs_b[:paired]) - sum(durs_a[:paired])
        removed = sum(durs_a[paired:])  # only in A
        added = sum(durs_b[paired:])  # only in B
        rows.append({
            "track": track,
            "name": name,
            "count_a": len(durs_a),
            "count_b": len(durs_b),
            "total_a_us": sum(durs_a),
            "total_b_us": sum(durs_b),
            "matched_delta_us": matched_delta,
            "removed_us": removed,
            "added_us": added,
            "delta_us": matched_delta + added - removed,
        })

    total_a = sum(r["total_a_us"] for r in rows)
    total_b = sum(r["total_b_us"] for r in rows)
    print(f"A: {args.trace_a}  ({len(spans_a)} spans, "
          f"{total_a:.1f} us on selected tracks)")
    print(f"B: {args.trace_b}  ({len(spans_b)} spans, "
          f"{total_b:.1f} us on selected tracks)")
    print(f"net simulated-time delta (B - A): {total_b - total_a:+.1f} us")
    print()

    rows.sort(key=lambda r: abs(r["delta_us"]), reverse=True)
    header = (f"{'delta us':>12}  {'A total':>12}  {'B total':>12}  "
              f"{'A#':>5}  {'B#':>5}  track / name")
    print(header)
    print("-" * len(header))
    for r in rows[:args.top]:
        if r["delta_us"] == 0 and r["count_a"] == r["count_b"]:
            continue
        print(f"{r['delta_us']:>+12.1f}  {r['total_a_us']:>12.1f}  "
              f"{r['total_b_us']:>12.1f}  {r['count_a']:>5}  "
              f"{r['count_b']:>5}  {r['track']} / {r['name']}")

    # Instant events (transfer-plan decisions, cache hits/evictions)
    # diff by count: the cache layer shows up here first.
    instant_keys = sorted(set(instants_a) | set(instants_b))
    instant_rows = [(k, instants_a.get(k, 0), instants_b.get(k, 0))
                    for k in instant_keys
                    if instants_a.get(k, 0) != instants_b.get(k, 0)
                    and track_selected(k[0])]
    if instant_rows:
        print("\ninstant-event count changes:")
        for (track, name), ca, cb in instant_rows:
            print(f"{cb - ca:>+12d}  {ca:>12}  {cb:>12}  "
                  f"{'':>5}  {'':>5}  {track} / {name}")

    if args.csv:
        import csv as csv_mod
        with open(args.csv, "w", newline="", encoding="utf-8") as f:
            writer = csv_mod.DictWriter(f, fieldnames=list(rows[0].keys())
                                        if rows else ["track", "name"])
            writer.writeheader()
            for r in sorted(rows, key=lambda r: (r["track"], r["name"])):
                writer.writerow(r)
        print(f"\nwrote {args.csv}")

    if args.fail_above_us is not None:
        net = total_b - total_a
        scope = (" on tracks matching " + ", ".join(repr(t) for t in
                                                    track_filters)
                 if track_filters else "")
        if net > args.fail_above_us:
            print(f"\nGATE FAIL: net delta {net:+.1f} us{scope} exceeds "
                  f"--fail-above-us {args.fail_above_us:g}")
            # Name the culprits right at the failure point so a CI log
            # tail is actionable without scrolling to the full table.
            offenders = [r for r in rows if r["delta_us"] > 0]
            offenders.sort(key=lambda r: r["delta_us"], reverse=True)
            for r in offenders[:5]:
                print(f"  offender: {r['track']} / {r['name']}  "
                      f"{r['delta_us']:+.1f} us "
                      f"({r['count_a']} -> {r['count_b']} spans)")
            return 1
        print(f"\ngate ok: net delta {net:+.1f} us{scope} within "
              f"--fail-above-us {args.fail_above_us:g}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head(1)
        sys.exit(0)
